"""Load projection: where would BGP alone put today's traffic?

The controller's first step each cycle assigns every measured prefix's
current rate to the interface its most-preferred (BGP-policy) route would
use, yielding projected per-interface load *absent any intervention*.
This is deliberately independent of any overrides currently in effect —
the controller is stateless across cycles and re-derives the full
override set from this clean projection every time.

Two implementations produce that picture:

- :func:`project` builds it from scratch, touching every measured prefix
  (the reference semantics, and the per-cycle cost ceiling).
- :class:`IncrementalProjection` keeps the picture alive between cycles
  and applies only the snapshot's *dirty* prefixes, so steady-state
  cycle cost tracks churn instead of table size.  Placement decisions
  are identical to :func:`project`; only the per-interface load floats
  may differ at accumulation-order (ulp) scale, which the controller's
  periodic full-reconciliation cycle measures and bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from ..bgp.route import Route
from ..dataplane.fib import egress_interface
from ..netbase.addr import Prefix
from ..netbase.intern import Interner
from ..netbase.units import Rate
from ..topology.entities import InterfaceKey, PoP
from .inputs import ControllerInputs

__all__ = ["Placement", "Projection", "IncrementalProjection", "project"]


@dataclass(frozen=True)
class Placement:
    """One prefix's projected assignment."""

    prefix: Prefix
    rate: Rate
    route: Route
    interface: InterfaceKey


@dataclass
class Projection:
    """Projected interface loads plus the per-prefix placements."""

    loads: Dict[InterfaceKey, Rate] = field(default_factory=dict)
    placements: Dict[Prefix, Placement] = field(default_factory=dict)
    #: Traffic for prefixes with no route at all (should be ~zero).
    unplaceable: Rate = Rate(0)

    def load_on(self, key: InterfaceKey) -> Rate:
        return self.loads.get(key, Rate(0))

    def prefixes_on(self, key: InterfaceKey) -> List[Placement]:
        """Placements assigned to one interface, heaviest first."""
        placements = [
            placement
            for placement in self.placements.values()
            if placement.interface == key
        ]
        placements.sort(key=lambda p: (-p.rate.bits_per_second, p.prefix))
        return placements

    def overloaded(
        self,
        capacities: Dict[InterfaceKey, Rate],
        threshold: float,
    ) -> List[InterfaceKey]:
        """Interfaces whose projected load exceeds threshold x capacity,
        most-overloaded (by absolute excess) first."""
        excesses = []
        for key, load in self.loads.items():
            capacity = capacities.get(key)
            if capacity is None or capacity.is_zero():
                continue
            limit = capacity.bits_per_second * threshold
            excess = load.bits_per_second - limit
            if excess > 0:
                excesses.append((excess, key))
        excesses.sort(key=lambda pair: (-pair[0], pair[1]))
        return [key for _excess, key in excesses]


class IncrementalProjection:
    """A :class:`Projection` maintained across cycles by applying deltas.

    Exposes the same query surface the allocator consumes (``loads``,
    ``placements``, ``unplaceable``, :meth:`load_on`, :meth:`prefixes_on`,
    :meth:`overloaded`) plus the mutation half: :meth:`rebuild` replays
    the full table with arithmetic identical to :func:`project`, and
    :meth:`apply` re-places only a snapshot's dirty prefixes.

    Beyond the projection itself it tracks what the *allocator* would
    care about: whether any placement changed structurally (appeared,
    vanished, moved interface, changed route, or saw route churn that
    could change its alternates) since :meth:`mark_allocated`, and how
    much absolute load each interface accumulated since then.  The
    controller uses those to decide whether last cycle's allocation is
    still exactly (or, with hysteresis, acceptably) valid.
    """

    #: Initial interface-column capacity; doubles on demand.
    _INITIAL_CAPACITY = 16

    def __init__(self, pop: PoP) -> None:
        self.pop = pop
        self.placements: Dict[Prefix, Placement] = {}
        # Columnar interface loads: interfaces are interned into dense
        # slots and per-interface bits/second live in a float64 column
        # (with a parallel liveness mask standing in for dict-key
        # presence), so drift comparison and utilization checks are
        # vectorized.  Element-wise float64 ops are the identical IEEE
        # operations the dict accumulation performed, so the loads stay
        # bit-for-bit equal to :func:`project`.
        self._ifaces: Interner[InterfaceKey] = Interner()
        # The load column and liveness mask are id-indexed, so the
        # projection registers as an interner consumer: any id-space
        # wipe must go through reset(), which drops the columns via
        # _invalidate_columns first (Interner.clear() would raise).
        self._ifaces.register_consumer(self._invalidate_columns)
        self._loads_col = np.zeros(self._INITIAL_CAPACITY, dtype=np.float64)
        self._live = np.zeros(self._INITIAL_CAPACITY, dtype=bool)
        self._by_interface: Dict[InterfaceKey, Dict[Prefix, Placement]] = {}
        self._sorted_cache: Dict[InterfaceKey, List[Placement]] = {}
        self._unplaceable_bps: Dict[Prefix, float] = {}
        self._unplaceable_total = 0.0
        # Reuse-band state, reset by mark_allocated():
        self._structural_change = True
        self._abs_delta_bps: Dict[InterfaceKey, float] = {}
        self._band_loads_bps: Dict[InterfaceKey, float] = {}

    def _invalidate_columns(self) -> None:
        """Drop every id-indexed structure (interner consumer hook)."""
        self._loads_col = np.zeros(self._INITIAL_CAPACITY, dtype=np.float64)
        self._live = np.zeros(self._INITIAL_CAPACITY, dtype=bool)
        self._by_interface = {}
        self._sorted_cache = {}

    def _slot_for(self, key: InterfaceKey) -> int:
        slot = self._ifaces.intern(key)
        if slot == len(self._loads_col):
            grown = len(self._loads_col) * 2
            loads = np.zeros(grown, dtype=np.float64)
            loads[:slot] = self._loads_col
            live = np.zeros(grown, dtype=bool)
            live[:slot] = self._live
            self._loads_col = loads
            self._live = live
        return slot

    # -- projection queries (the allocator's view) ---------------------------

    @property
    def loads(self) -> Dict[InterfaceKey, Rate]:
        table = self._ifaces.keys
        unboxed = self._loads_col.tolist()
        return {
            table[slot]: Rate(unboxed[slot])
            for slot in np.nonzero(self._live)[0].tolist()
        }

    @property
    def unplaceable(self) -> Rate:
        return Rate(self._unplaceable_total)

    def load_on(self, key: InterfaceKey) -> Rate:
        slot = self._ifaces.id_of(key)
        if slot is None or not self._live[slot]:
            return Rate(0.0)
        return Rate(self._loads_col[slot].item())

    def prefixes_on(self, key: InterfaceKey) -> List[Placement]:
        """Placements assigned to one interface, heaviest first.

        Sorted once per (interface, churn) rather than scanning the full
        placement table the way :meth:`Projection.prefixes_on` does; the
        resulting list is identical.
        """
        cached = self._sorted_cache.get(key)
        if cached is None:
            holders = self._by_interface.get(key)
            cached = list(holders.values()) if holders else []
            cached.sort(key=lambda p: (-p.rate.bits_per_second, p.prefix))
            self._sorted_cache[key] = cached
        return list(cached)

    def overloaded(
        self,
        capacities: Dict[InterfaceKey, Rate],
        threshold: float,
    ) -> List[InterfaceKey]:
        """Same contract as :meth:`Projection.overloaded`."""
        count = len(self._ifaces)
        if count == 0:
            return []
        table = self._ifaces.keys
        caps = np.zeros(count, dtype=np.float64)
        for slot in np.nonzero(self._live[:count])[0].tolist():
            capacity = capacities.get(table[slot])
            if capacity is not None and not capacity.is_zero():
                caps[slot] = capacity.bits_per_second
        # Vectorized `load - capacity * threshold`: element-wise float64,
        # identical to the per-key arithmetic it replaces.  Slots with no
        # (or zero) capacity keep caps == 0 and are masked out below.
        excess = self._loads_col[:count] - caps * threshold
        mask = self._live[:count] & (caps > 0.0) & (excess > 0.0)
        unboxed = excess.tolist()
        excesses = [
            (unboxed[slot], table[slot])
            for slot in np.nonzero(mask)[0].tolist()
        ]
        excesses.sort(key=lambda pair: (-pair[0], pair[1]))
        return [key for _excess, key in excesses]

    # -- mutation -------------------------------------------------------------

    def rebuild(self, inputs: ControllerInputs) -> Dict[InterfaceKey, float]:
        """Replay the full table; returns relative drift per interface.

        The replay iterates ``inputs.traffic`` in table order with the
        exact accumulation :func:`project` performs, so the rebuilt
        floats equal a from-scratch projection bit for bit.  The return
        value compares the incrementally-maintained loads this object
        held *before* the rebuild against the replayed truth: relative
        disagreement per interface, for the controller's drift guard
        (empty on the first build).
        """
        before_count = len(self._ifaces)
        before_col = self._loads_col[:before_count].copy()
        had_state = bool(self._live.any()) or bool(self.placements)
        self.placements = {}
        self._loads_col[:] = 0.0
        self._live[:] = False
        self._by_interface = {}
        self._sorted_cache = {}
        self._unplaceable_bps = {}
        unplaceable_total = 0.0
        loads_col = self._loads_col
        live = self._live
        for prefix, rate in inputs.traffic.items():
            routes = inputs.routes_of(prefix)
            if not routes:
                bps = rate.bits_per_second
                self._unplaceable_bps[prefix] = bps
                unplaceable_total += bps
                continue
            preferred = routes[0]
            key = egress_interface(self.pop, preferred)
            slot = self._slot_for(key)
            if loads_col is not self._loads_col:
                loads_col = self._loads_col
                live = self._live
            loads_col[slot] += rate.bits_per_second
            live[slot] = True
            placement = Placement(
                prefix=prefix, rate=rate, route=preferred, interface=key
            )
            self.placements[prefix] = placement
            holders = self._by_interface.get(key)
            if holders is None:
                holders = {}
                self._by_interface[key] = holders
            holders[prefix] = placement
        self._unplaceable_total = unplaceable_total
        self._structural_change = True
        drift: Dict[InterfaceKey, float] = {}
        if had_state:
            count = len(self._ifaces)
            truth = self._loads_col[:count]
            held = np.zeros(count, dtype=np.float64)
            held[:before_count] = before_col
            # Vectorized |truth - held| / max(|truth|, |held|, 1.0):
            # element-wise float64, identical to the scalar arithmetic.
            # Slots dead in both snapshots hold 0.0 in both columns and
            # fall out through the `> 0.0` filter, exactly as keys
            # absent from both dicts never entered the old loop.
            scale = np.maximum(np.maximum(np.abs(truth), np.abs(held)), 1.0)
            relative = np.abs(truth - held) / scale
            table = self._ifaces.keys
            unboxed = relative.tolist()
            for slot in np.nonzero(relative > 0.0)[0].tolist():
                drift[table[slot]] = unboxed[slot]
        return drift

    def apply(self, inputs: ControllerInputs) -> None:
        """Re-place only the snapshot's dirty prefixes.

        Dirty prefixes are processed in sorted order so the float
        adjustments accumulate identically run to run regardless of set
        iteration order.
        """
        dirty = inputs.dirty_prefixes
        if dirty is None:
            raise ValueError("apply() needs an incremental snapshot")
        route_dirty = inputs.route_dirty_prefixes or frozenset()
        traffic = inputs.traffic
        for prefix in sorted(dirty):
            old = self.placements.pop(prefix, None)
            if old is not None:
                old_key = old.interface
                old_slot = self._ifaces.id_of(old_key)
                assert old_slot is not None
                self._loads_col[old_slot] -= old.rate.bits_per_second
                holders = self._by_interface[old_key]
                del holders[prefix]
                self._sorted_cache.pop(old_key, None)
                if not holders:
                    # Retire the empty interface entirely so a rebuilt
                    # projection (which would never create the key)
                    # agrees on which interfaces carry load, instead of
                    # leaving an ulp-scale float residue behind.
                    del self._by_interface[old_key]
                    self._live[old_slot] = False
                    self._loads_col[old_slot] = 0.0
            else:
                stale = self._unplaceable_bps.pop(prefix, None)
                if stale is not None:
                    self._unplaceable_total -= stale
            rate = traffic.get(prefix)
            new: Optional[Placement] = None
            if rate is not None:
                routes = inputs.routes_of(prefix)
                if not routes:
                    bps = rate.bits_per_second
                    self._unplaceable_bps[prefix] = bps
                    self._unplaceable_total += bps
                else:
                    preferred = routes[0]
                    key = egress_interface(self.pop, preferred)
                    slot = self._slot_for(key)
                    # Retired slots were zeroed, so += restarts from
                    # exactly the 0.0 a fresh dict entry would hold.
                    self._loads_col[slot] += rate.bits_per_second
                    self._live[slot] = True
                    new = Placement(
                        prefix=prefix,
                        rate=rate,
                        route=preferred,
                        interface=key,
                    )
                    self.placements[prefix] = new
                    holders = self._by_interface.get(key)
                    if holders is None:
                        holders = {}
                        self._by_interface[key] = holders
                    holders[prefix] = new
                    self._sorted_cache.pop(key, None)
            self._note_change(prefix, old, new, prefix in route_dirty)

    def _note_change(
        self,
        prefix: Prefix,
        old: Optional[Placement],
        new: Optional[Placement],
        route_dirty: bool,
    ) -> None:
        """Classify one re-placement for the allocation-reuse band.

        Anything that could change the *decisions* a fresh allocator
        pass would make is structural: placements appearing/vanishing,
        moving interface, switching preferred route, or route churn on
        a placed prefix (its alternate list feeds detour selection).
        A pure rate change on an unchanged placement only widens the
        interface's accumulated jitter.
        """
        if old is None and new is None:
            # Untrafficked prefix (route churn with no measured rate, or
            # rate expiring to zero with nothing placed): invisible to
            # the allocator.
            return
        if (
            old is None
            or new is None
            or old.interface != new.interface
            or old.route != new.route
            or route_dirty
        ):
            self._structural_change = True
            for placement in (old, new):
                if placement is not None:
                    delta = self._abs_delta_bps
                    delta[placement.interface] = (
                        delta.get(placement.interface, 0.0)
                        + placement.rate.bits_per_second
                    )
            return
        jitter = abs(
            new.rate.bits_per_second - old.rate.bits_per_second
        )
        if jitter > 0.0:
            delta = self._abs_delta_bps
            delta[new.interface] = (
                delta.get(new.interface, 0.0) + jitter
            )

    # -- allocation-reuse band -------------------------------------------------

    def mark_allocated(self) -> None:
        """Record that the allocator just ran against this projection."""
        self._structural_change = False
        self._abs_delta_bps = {}
        table = self._ifaces.keys
        unboxed = self._loads_col.tolist()
        self._band_loads_bps = {
            table[slot]: unboxed[slot]
            for slot in np.nonzero(self._live)[0].tolist()
        }

    def allocation_still_valid(
        self,
        capacities: Dict[InterfaceKey, Rate],
        threshold: float,
        hysteresis_fraction: float,
    ) -> bool:
        """Would a fresh allocator pass necessarily decide the same?

        True only when, since :meth:`mark_allocated`, no structural
        placement change happened, no interface crossed the detour
        threshold in either direction, and every interface's accumulated
        absolute load movement stays within ``hysteresis_fraction`` of
        its threshold limit.  With hysteresis 0 that means the load
        floats are untouched, so reusing the cached allocation is *exact*;
        with hysteresis > 0 it tolerates bounded sampling jitter at the
        cost of equally bounded staleness in the reused decisions.
        """
        if self._structural_change:
            return False
        band = self._band_loads_bps
        for key in self._abs_delta_bps:
            capacity = capacities.get(key)
            if capacity is None or capacity.is_zero():
                continue
            limit = capacity.bits_per_second * threshold
            slot = self._ifaces.id_of(key)
            if slot is not None and self._live[slot]:
                now_bps = self._loads_col[slot].item()
            else:
                now_bps = 0.0
            then_bps = band.get(key, 0.0)
            if (now_bps > limit) != (then_bps > limit):
                return False
            if self._abs_delta_bps[key] > hysteresis_fraction * limit:
                return False
        return True


def project(pop: PoP, inputs: ControllerInputs) -> Projection:
    """Build the BGP-only projection for one cycle.

    Loads accumulate as plain bits/second floats (one :class:`Rate` per
    interface at the end) — this runs over every measured prefix every
    cycle.
    """
    projection = Projection()
    loads_bps: Dict[InterfaceKey, float] = {}
    unplaceable_bps = 0.0
    for prefix, rate in inputs.traffic.items():
        routes = inputs.routes_of(prefix)
        if not routes:
            unplaceable_bps += rate.bits_per_second
            continue
        preferred: Optional[Route] = routes[0]
        key = egress_interface(pop, preferred)
        loads_bps[key] = loads_bps.get(key, 0.0) + rate.bits_per_second
        projection.placements[prefix] = Placement(
            prefix=prefix, rate=rate, route=preferred, interface=key
        )
    projection.loads = {
        key: Rate(value) for key, value in loads_bps.items()
    }
    projection.unplaceable = Rate(unplaceable_bps)
    return projection
