"""Controller self-monitoring: per-cycle reports and run-level history.

Production Edge Fabric is audited heavily (every decision logged, every
override accounted for); this module is that audit trail, and doubles as
the data source for the evaluation — detour volume over time, detour
durations, override churn, unresolved overloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..netbase.units import Rate

__all__ = ["CycleReport", "ControllerMonitor"]


@dataclass(frozen=True)
class CycleReport:
    """What one controller cycle saw and did."""

    time: float
    skipped: bool = False
    skip_reason: str = ""
    total_traffic: Rate = Rate(0)
    prefixes_seen: int = 0
    overloaded_interfaces: tuple = ()
    detour_count: int = 0
    detoured_rate: Rate = Rate(0)
    announced: int = 0
    withdrawn: int = 0
    kept: int = 0
    unresolved: tuple = ()
    perf_moves: int = 0
    runtime_seconds: float = 0.0
    #: Which decision path produced this cycle: "full" (incremental
    #: engine off), "rebuild" (reconciliation or delta fallback),
    #: "delta" (incremental projection + fresh allocation), or "reuse"
    #: (cached allocation revalidated).  "" on skipped cycles.
    decision_path: str = ""
    #: Routes actually held by the injector after this cycle.  Equal to
    #: the active override count normally; under aggregated injection
    #: it is the (much smaller) covering-prefix count.
    installed_overrides: int = 0

    @property
    def churn(self) -> int:
        return self.announced + self.withdrawn

    @property
    def detoured_fraction(self) -> float:
        if self.total_traffic.is_zero():
            return 0.0
        return self.detoured_rate / self.total_traffic


@dataclass
class ControllerMonitor:
    """Accumulates cycle reports for a whole run."""

    reports: List[CycleReport] = field(default_factory=list)

    def record(self, report: CycleReport) -> None:
        self.reports.append(report)

    # -- run-level queries ---------------------------------------------------

    def cycles(self) -> int:
        return len(self.reports)

    def skipped_cycles(self) -> int:
        return sum(1 for report in self.reports if report.skipped)

    def detoured_fraction_series(self) -> List[tuple]:
        """(time, fraction of traffic detoured) per active cycle."""
        return [
            (report.time, report.detoured_fraction)
            for report in self.reports
            if not report.skipped
        ]

    def detour_count_series(self) -> List[tuple]:
        return [
            (report.time, report.detour_count)
            for report in self.reports
            if not report.skipped
        ]

    def total_churn(self) -> int:
        return sum(report.churn for report in self.reports)

    def mean_churn_per_cycle(self) -> float:
        active = [r for r in self.reports if not r.skipped]
        if not active:
            return 0.0
        return sum(r.churn for r in active) / len(active)

    def peak_detoured_fraction(self) -> float:
        return max(
            (r.detoured_fraction for r in self.reports if not r.skipped),
            default=0.0,
        )

    def unresolved_overload_cycles(self) -> int:
        return sum(1 for r in self.reports if r.unresolved)

    def mean_runtime(self) -> float:
        active = [r for r in self.reports if not r.skipped]
        if not active:
            return 0.0
        return sum(r.runtime_seconds for r in active) / len(active)
