"""Controller self-monitoring: per-cycle reports and run-level history.

Production Edge Fabric is audited heavily (every decision logged, every
override accounted for); this module is that audit trail, and doubles as
the data source for the evaluation — detour volume over time, detour
durations, override churn, unresolved overloads.

The run-level history is backed by a
:class:`~repro.obs.timeseries.TimeSeriesStore` (one named ring series
per signal, recorded as each report lands) so the same store the health
engine samples also answers the evaluation queries; the full
:class:`CycleReport` list is kept alongside for the detail-level
consumers (experiments, chaos reports).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..netbase.units import Rate
from ..obs.timeseries import TimeSeriesStore

__all__ = ["CycleReport", "ControllerMonitor"]


@dataclass(frozen=True)
class CycleReport:
    """What one controller cycle saw and did."""

    time: float
    skipped: bool = False
    skip_reason: str = ""
    total_traffic: Rate = Rate(0)
    prefixes_seen: int = 0
    overloaded_interfaces: tuple = ()
    detour_count: int = 0
    detoured_rate: Rate = Rate(0)
    announced: int = 0
    withdrawn: int = 0
    kept: int = 0
    unresolved: tuple = ()
    perf_moves: int = 0
    runtime_seconds: float = 0.0
    #: Which decision path produced this cycle: "full" (incremental
    #: engine off), "rebuild" (reconciliation or delta fallback),
    #: "delta" (incremental projection + fresh allocation), or "reuse"
    #: (cached allocation revalidated).  "" on skipped cycles.
    decision_path: str = ""
    #: Routes actually held by the injector after this cycle.  Equal to
    #: the active override count normally; under aggregated injection
    #: it is the (much smaller) covering-prefix count.
    installed_overrides: int = 0

    @property
    def churn(self) -> int:
        return self.announced + self.withdrawn

    @property
    def detoured_fraction(self) -> float:
        if self.total_traffic.is_zero():
            return 0.0
        return self.detoured_rate / self.total_traffic


@dataclass
class ControllerMonitor:
    """Accumulates cycle reports for a whole run.

    Every report also lands in :attr:`series` — churn per cycle (all
    cycles: skipped ones still carry fail-static withdrawals), plus
    detoured-fraction / detour-count / runtime / unresolved for active
    cycles and a 0/1 skipped marker — so run-level queries read bounded
    ring series instead of rescanning the report list.
    """

    reports: List[CycleReport] = field(default_factory=list)
    series: TimeSeriesStore = field(default_factory=TimeSeriesStore)

    def record(self, report: CycleReport) -> None:
        self.reports.append(report)
        series = self.series
        time = report.time
        series.record("churn", time, report.churn)
        series.record("skipped", time, 1.0 if report.skipped else 0.0)
        if not report.skipped:
            series.record(
                "detoured_fraction", time, report.detoured_fraction
            )
            series.record("detour_count", time, report.detour_count)
            series.record("runtime", time, report.runtime_seconds)
            series.record(
                "unresolved", time, 1.0 if report.unresolved else 0.0
            )

    # -- run-level queries ---------------------------------------------------

    def cycles(self) -> int:
        return len(self.reports)

    def skipped_cycles(self) -> int:
        skipped = self.series.get("skipped")
        return int(sum(skipped.values())) if skipped else 0

    def detoured_fraction_series(self) -> List[tuple]:
        """(time, fraction of traffic detoured) per active cycle."""
        fractions = self.series.get("detoured_fraction")
        return fractions.points() if fractions else []

    def detour_count_series(self) -> List[tuple]:
        counts = self.series.get("detour_count")
        if counts is None:
            return []
        return [(time, int(value)) for time, value in counts.points()]

    def total_churn(self) -> int:
        churn = self.series.get("churn")
        return int(sum(churn.values())) if churn else 0

    def mean_churn_per_cycle(self) -> float:
        active = self.cycles() - self.skipped_cycles()
        if not active:
            return 0.0
        # Skipped cycles contribute fail-static withdrawals to total
        # churn but are not "cycles" for the per-cycle mean.
        skipped_churn = sum(
            report.churn for report in self.reports if report.skipped
        )
        return (self.total_churn() - skipped_churn) / active

    def peak_detoured_fraction(self) -> float:
        fractions = self.series.get("detoured_fraction")
        if fractions is None or not len(fractions):
            return 0.0
        return max(fractions.values())

    def unresolved_overload_cycles(self) -> int:
        unresolved = self.series.get("unresolved")
        return int(sum(unresolved.values())) if unresolved else 0

    def mean_runtime(self) -> float:
        runtime = self.series.get("runtime")
        if runtime is None or not len(runtime):
            return 0.0
        return runtime.mean()
