"""PopDeployment: the full Edge Fabric pipeline wired end to end.

One object assembles everything a PoP runs:

- the wired PoP (routers, sessions, RIBs) from :mod:`repro.topology`,
- BMP exporters on every PR feeding one :class:`BmpCollector`,
- sFlow agents (inside the dataplane simulator) feeding one
  :class:`SflowCollector`, with destination prefixes resolved against the
  BMP RIB — the same join production does,
- the dataplane simulator,
- the injector, the alternate-path monitor, and the controller.

``step(now)`` advances one tick; ``run(...)`` drives a whole experiment
and returns the accumulated record.  Benchmarks and examples build on
this object rather than re-wiring the parts.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..bmp.collector import BmpCollector
from ..bmp.exporter import BmpExporter
from ..dataplane.fib import egress_interface
from ..dataplane.simulator import PopSimulator, TickResult
from ..measurement.altpath import AltPathMonitor
from ..measurement.pathmodel import PathModelConfig, PathPerformanceModel
from ..netbase.addr import Family, Prefix
from ..netbase.units import Rate, gbps
from ..obs.telemetry import Telemetry
from ..sflow.collector import SflowCollector
from ..topology.builder import WiredPop
from ..topology.scenarios import build_study_pop
from ..traffic.demand import DemandConfig, DemandModel
from .config import ControllerConfig
from .controller import EdgeFabricController
from .injector import BgpInjector
from .inputs import InputAssembler
from .monitoring import CycleReport

__all__ = [
    "TickSummary",
    "RunRecord",
    "CollectorResubscriber",
    "PopDeployment",
]


class CollectorResubscriber:
    """Bounded retry-with-backoff repair for a stale BMP feed.

    Polled once per tick.  While the route feed is healthy this is one
    ``needs_resync`` check and one age comparison.  When the feed goes
    stale (or a collector reset demands a resync), it drives full-RIB
    re-exports — the BMP equivalent of reconnecting and receiving the
    initial dump — first immediately, then with exponential backoff.
    After ``resubscribe_max_attempts`` failures it raises an
    operator-facing gauge and keeps retrying at the capped interval, so
    a long outage is noisy but recovery is never abandoned.
    """

    def __init__(self, bmp, exporters, config, telemetry) -> None:
        self.bmp = bmp
        self.exporters = exporters
        self.config = config
        #: Attempts within the current outage (0 when healthy).
        self.attempts = 0
        self.total_attempts = 0
        self._next_attempt_at: Optional[float] = None
        self._resync_seen = False
        registry = telemetry.registry
        self._m_attempts = registry.counter(
            "bmp_resubscribe_attempts_total",
            "Full-RIB re-export attempts on a stale route feed",
        )
        self._m_exhausted = registry.gauge(
            "bmp_resubscribe_exhausted",
            "1 while retries have exceeded the attempt bound",
        )

    def poll(self, now: float) -> bool:
        """Check feed health; attempt repair if due.  True if attempted."""
        bmp = self.bmp
        stale = bmp.needs_resync or (
            bmp.age() > self.config.max_input_age_seconds
        )
        if not stale:
            if self.attempts:
                self.attempts = 0
                self._next_attempt_at = None
                self._m_exhausted.set(0)
            self._resync_seen = False
            return False
        if bmp.needs_resync and not self._resync_seen:
            # A *new* resync request means the feed's transport is back
            # (flap over, or a fresh collector) — attempt immediately
            # instead of waiting out backoff from the dead window.
            self._resync_seen = True
            self._next_attempt_at = None
        if self._next_attempt_at is not None and now < self._next_attempt_at:
            return False
        self.attempts += 1
        self.total_attempts += 1
        self._m_attempts.inc()
        if self.attempts > self.config.resubscribe_max_attempts:
            self._m_exhausted.set(1)
        needed_resync = bmp.needs_resync
        for exporter in self.exporters:
            exporter.export_full_rib()
        if needed_resync and bmp.age() <= self.config.max_input_age_seconds:
            bmp.mark_resynced()
        exponent = min(
            self.attempts - 1, self.config.resubscribe_max_attempts - 1
        )
        self._next_attempt_at = now + (
            self.config.resubscribe_initial_seconds
            * self.config.resubscribe_backoff_multiplier ** exponent
        )
        return True


@dataclass(frozen=True)
class TickSummary:
    """Per-tick roll-up kept for the whole run."""

    time: float
    offered: Rate
    dropped: Rate
    detoured: Rate
    active_overrides: int


@dataclass
class RunRecord:
    """Everything a run accumulated."""

    ticks: List[TickSummary] = field(default_factory=list)
    cycle_reports: List[CycleReport] = field(default_factory=list)
    #: The run's :class:`~repro.obs.telemetry.Telemetry` (metrics,
    #: spans, decision audit), attached by :class:`PopDeployment` so
    #: experiments can persist telemetry alongside results.
    telemetry: Optional[Telemetry] = field(
        default=None, repr=False, compare=False
    )

    def write_telemetry_jsonl(self, path) -> int:
        """Persist attached telemetry as JSONL; returns lines written."""
        if self.telemetry is None:
            raise ValueError("no telemetry attached to this record")
        return self.telemetry.write_jsonl(path)

    def total_dropped_bits(self, tick_seconds: float) -> float:
        return sum(
            t.dropped.bits_per_second * tick_seconds for t in self.ticks
        )

    def total_offered_bits(self, tick_seconds: float) -> float:
        return sum(
            t.offered.bits_per_second * tick_seconds for t in self.ticks
        )

    def drop_fraction(self, tick_seconds: float) -> float:
        """Dropped bits as a fraction of offered bits over the run."""
        offered = self.total_offered_bits(tick_seconds)
        if offered == 0.0:
            return 0.0
        return self.total_dropped_bits(tick_seconds) / offered

    def peak_offered(self) -> Rate:
        return Rate(
            max(
                (t.offered.bits_per_second for t in self.ticks),
                default=0.0,
            )
        )

    def peak_detoured_fraction(self) -> float:
        fractions = (
            (t.detoured / t.offered) if t.offered else 0.0
            for t in self.ticks
        )
        return max(fractions, default=0.0)

    def detoured_fraction_series(self) -> List[tuple]:
        return [
            (
                t.time,
                (t.detoured / t.offered) if t.offered else 0.0,
            )
            for t in self.ticks
        ]


class PopDeployment:
    """A PoP with its full Edge Fabric stack."""

    def __init__(
        self,
        wired: WiredPop,
        demand: DemandModel,
        controller_config: ControllerConfig = ControllerConfig(),
        tick_seconds: float = 30.0,
        sampling_rate: int = 65536,
        estimator_window: float = 60.0,
        altpath_every_ticks: int = 0,
        altpath_prefix_count: int = 200,
        path_model_seed: int = 0,
        seed: int = 0,
        telemetry: Optional[Telemetry] = None,
        faults=None,
        safety_checks: bool = False,
        health_checks: bool = False,
        slo_spec=None,
        wire_tap=None,
        external_ingest: bool = False,
    ) -> None:
        self.wired = wired
        self.demand = demand
        self.config = controller_config
        self.tick_seconds = tick_seconds
        self.current_time = 0.0
        #: Optional :class:`repro.faults.FaultInjector`.  ``None`` (the
        #: default) keeps every fault hook off the hot path.
        self.faults = faults
        #: Optional :class:`repro.io.capture.WireTap`: sees every byte
        #: the collectors consume (including the construction-time
        #: full-RIB export below) plus per-tick time/utilization frames,
        #: which is exactly what loopback replay needs to reproduce this
        #: deployment's decisions from sockets.
        self.wire_tap = wire_tap
        #: When True the deployment runs *without* in-process exporters
        #: or simulator feeding: all collector input arrives from the
        #: outside (the socket frontends), and :meth:`control_step`
        #: replaces :meth:`step`.
        self.external_ingest = external_ingest

        # One telemetry handle shared by every layer of the stack, so
        # the registry/tracer/audit views cover the whole tick path.
        self.telemetry = telemetry or Telemetry(name=wired.pop.name)
        self._m_ticks = self.telemetry.registry.counter(
            "pipeline_ticks_total", "Deployment steps taken"
        )
        self._m_tick_wall = self.telemetry.registry.histogram(
            "tick_wall_seconds", "Full step() wall time"
        )

        # Routes: exporters -> BMP collector (sim-clocked).  With a
        # fault injector attached, the sink detours through the flap
        # filter; without one, the collector's bound method feeds
        # directly — zero added indirection on the healthy path.
        self.bmp = BmpCollector(
            wired.registry,
            clock=lambda: self.current_time,
            telemetry=self.telemetry,
        )
        self._bmp_deliver = (
            self.bmp.feed if wire_tap is None else self._bmp_feed_tapped
        )
        sink = (
            self._bmp_deliver if faults is None else self._bmp_feed_faulted
        )
        self.exporters = (
            []
            if external_ingest
            else [
                BmpExporter(speaker, sink)
                for speaker in wired.speakers.values()
            ]
        )
        for exporter in self.exporters:
            exporter.export_full_rib()

        # Traffic: simulator's agents -> sFlow collector, resolved
        # against the BMP RIB.  The estimator window must span a whole
        # number of ticks: each tick feeds tick_seconds worth of bytes,
        # so a window shorter than two ticks would average one tick's
        # bytes over less time than they represent, inflating every
        # rate estimate by tick/window.
        effective_window = max(estimator_window, 2.0 * tick_seconds)
        self.sflow = SflowCollector(
            self._resolve_prefix,
            window_seconds=effective_window,
            telemetry=self.telemetry,
        )
        self.simulator = PopSimulator(
            wired,
            demand,
            tick_seconds=tick_seconds,
            sampling_rate=sampling_rate,
            seed=seed,
            telemetry=self.telemetry,
        )
        if faults is not None:
            self.simulator.datagram_filter = faults.filter_datagrams
        for router, agent in self.simulator.agents.items():
            self.sflow.register_router(
                router, agent.agent_address, agent.interfaces
            )

        # Measurement: the alternate-path monitor (paper §5).
        self.path_model = PathPerformanceModel(
            PathModelConfig(seed=path_model_seed)
        )
        self.altpath = AltPathMonitor(
            routes_of=lambda prefix: [
                route
                for route in self.bmp.routes_for(prefix)
                if not route.is_injected
            ],
            model=self.path_model,
            egress_interface_of=lambda route: egress_interface(
                wired.pop, route
            ),
            seed=seed,
        )
        self.altpath_every_ticks = altpath_every_ticks
        self.altpath_prefix_count = altpath_prefix_count

        # Control: injector + controller.
        self.injector = BgpInjector(
            wired.pop, wired.speakers, controller_config
        )
        self.assembler = InputAssembler(
            wired.pop, self.bmp, self.sflow, controller_config
        )
        self.controller = EdgeFabricController(
            self.assembler,
            self.injector,
            controller_config,
            altpath=self.altpath,
            telemetry=self.telemetry,
        )
        self.resubscriber = CollectorResubscriber(
            self.bmp, self.exporters, controller_config, self.telemetry
        )
        self.safety = None
        if safety_checks:
            from .safety import SafetyChecker

            self.safety = SafetyChecker(self.controller, self.bmp)
        #: Optional :class:`repro.obs.HealthEngine` — a pure observer
        #: fed after every controller cycle; steering is byte-identical
        #: with it on or off.
        self.health = None
        if health_checks:
            from ..obs.health import HealthEngine

            self.health = HealthEngine(
                spec=slo_spec,
                telemetry=self.telemetry,
                cycle_seconds=controller_config.cycle_seconds,
            )

        self.record = RunRecord(telemetry=self.telemetry)
        #: Optional :class:`repro.analysis.perf.PerfRecorder`; when set,
        #: every step's wall time and every cycle's runtime is recorded.
        self.perf = None
        self._last_cycle_at: Optional[float] = None
        self._tick_index = 0
        self._resolve_cache: Dict = {}
        self._resolve_cache_version = -1

    # -- construction helper ------------------------------------------------------

    @classmethod
    def build(
        cls,
        pop_name: str = "pop-a",
        seed: int = 0,
        peak_total: Rate = gbps(260),
        demand_overrides: Optional[dict] = None,
        controller_config: ControllerConfig = ControllerConfig(),
        flash_events: tuple = (),
        **kwargs,
    ) -> "PopDeployment":
        """Build a canonical study-PoP deployment in one call."""
        wired = build_study_pop(pop_name, seed=seed)
        demand_kwargs = dict(seed=seed + 1, peak_total=peak_total)
        if demand_overrides:
            demand_kwargs.update(demand_overrides)
        demand = DemandModel(
            wired.internet.all_prefixes(),
            DemandConfig(**demand_kwargs),
            popular=wired.popular_prefixes(),
            flash_events=flash_events,
        )
        # Provision private capacity against the measured demand — as
        # operators do — leaving the spec's "tight" peers under-built.
        from ..topology.builder import provision_against_demand
        from ..topology.scenarios import study_pop_spec

        spec = study_pop_spec(pop_name, seed=seed)
        provision_against_demand(
            wired,
            demand.weight_of,
            expected_peak=peak_total,
            headroom=spec.private_headroom,
            tight_headroom=spec.tight_headroom,
            tight_peer_count=spec.tight_peer_count,
            seed=seed + 2,
        )
        return cls(wired, demand, controller_config, seed=seed, **kwargs)

    # -- plumbing ----------------------------------------------------------------

    def _bmp_feed_faulted(self, router: str, data: bytes) -> None:
        """BMP sink with the fault injector's flap filter in front."""
        if self.faults.drops_bmp(router):
            self.faults.note_bmp_dropped(router, len(data))
            return
        self._bmp_deliver(router, data)

    def _bmp_feed_tapped(self, router: str, data: bytes) -> None:
        """BMP sink that records the delivered bytes on the wire tap.

        Sits *after* the fault filter so the capture holds exactly what
        the collector consumed — replaying it reproduces the same RIB
        without re-running the fault plan.
        """
        self.wire_tap.on_bmp(router, data)
        self.bmp.feed(router, data)

    def _resolve_prefix(
        self, family: Family, address: int
    ) -> Optional[Prefix]:
        """LPM of a sampled destination against the BMP RIB, cached.

        The import policy rejects prefixes longer than /24 (v4) or /48
        (v6), so every address inside the same /24 (or /48) shares one
        longest-prefix match — the cache keys on that masked address.
        Any route change invalidates the whole cache (version check),
        keeping the shortcut exactly equivalent to a fresh LPM.
        """
        version = (
            self.bmp.stats.announcements
            + self.bmp.stats.withdrawals
            + self.bmp.stats.peer_downs
            + self.bmp.resets
        )
        if version != self._resolve_cache_version:
            self._resolve_cache.clear()
            self._resolve_cache_version = version
        granularity = 24 if family is Family.IPV4 else 48
        mask_bits = family.max_length - granularity
        key = (family, address >> mask_bits)
        try:
            return self._resolve_cache[key]
        except KeyError:
            pass
        host = Prefix.from_address(family, address, family.max_length)
        route = self.bmp.longest_match(host)
        prefix = route.prefix if route is not None else None
        self._resolve_cache[key] = prefix
        return prefix

    # -- live reconfiguration -----------------------------------------------------

    def set_interface_capacity(
        self, key, capacity: Rate, notify_controller: bool = True
    ) -> None:
        """Change an egress interface's capacity mid-experiment.

        Models capacity augments and failures (e.g. an IXP port brought
        down to half rate).  Updates both the dataplane's view and the
        controller's capacity table, as a production config push would.
        With ``notify_controller=False`` only the dataplane changes — a
        *silent* degradation nobody told the control plane about, which
        is exactly the blind spot fault injection needs to model.
        """
        from ..topology.entities import Interface

        router_name, interface_name = key
        router = self.wired.pop.routers[router_name]
        if interface_name not in router.interfaces:
            raise KeyError(f"unknown interface {key}")
        router.interfaces[interface_name] = Interface(
            router=router_name, name=interface_name, capacity=capacity
        )
        if notify_controller:
            self.assembler.set_capacity(key, capacity)

    # -- controller lifecycle (crash / restart) -----------------------------------

    def crash_controller(self, now: float) -> None:
        """Kill the controller mid-run.

        Its iBGP sessions drop, so every router flushes the injected
        routes on its own — traffic reverts to vanilla BGP without the
        controller sending a single withdrawal.  The controller object's
        in-memory state is flushed too; until
        :meth:`restart_controller`, no cycles run.
        """
        self.injector.teardown_sessions()
        self.controller.crash(now)
        # The assembler's maintained traffic table dies with the
        # process too; the restarted controller's first snapshot must
        # rebuild from the collectors, not resume a ghost delta chain.
        self.assembler.force_full_snapshot()

    def restart_controller(self, now: float) -> None:
        """Bring a crashed controller back.

        Sessions re-establish empty; the stateless-cycle design means
        the next cycle re-derives whatever overrides current inputs
        justify, converging within one cycle.
        """
        self.injector.reestablish_sessions()
        self._last_cycle_at = None

    # -- stepping -----------------------------------------------------------------

    def step(self, now: float, run_controller: bool = True) -> TickResult:
        """Advance the deployment one tick to time *now*."""
        perf = self.perf
        step_started = _time.perf_counter()
        self.current_time = now
        faults = self.faults
        tap = self.wire_tap
        if tap is not None:
            tap.on_tick(now)
        if faults is not None:
            faults.on_tick(self, now)
        self._tick_index += 1
        result = self.simulator.tick(now)
        if tap is None:
            for datagrams in result.datagrams.values():
                self.sflow.feed_many(datagrams, now)
        else:
            # Record exactly the per-router batches the collector eats
            # (post fault filtering), one capture frame per feed_many
            # call, so replay reproduces the same float-summation order.
            for router, datagrams in result.datagrams.items():
                tap.on_sflow(router, datagrams)
                self.sflow.feed_many(datagrams, now)
        for exporter in self.exporters:
            exporter.heartbeat()

        self._control_phase(now, run_controller=run_controller)

        detoured = self._currently_detoured_rate(result)
        self.record.ticks.append(
            TickSummary(
                time=now,
                offered=result.total_offered(),
                dropped=result.total_dropped(),
                detoured=detoured,
                active_overrides=len(self.controller.overrides),
            )
        )
        wall = _time.perf_counter() - step_started
        self._m_ticks.inc()
        self._m_tick_wall.observe(wall)
        if perf is not None:
            perf.record_tick(wall)
        return result

    def _control_phase(
        self,
        now: float,
        run_controller: bool = True,
        utilization_of=None,
        ingest=None,
    ) -> Optional[CycleReport]:
        """The control half of a tick: resubscriber poll, due alt-path
        round, and (when a cycle is due) the controller cycle with
        safety/health observation.  Shared verbatim by the in-process
        :meth:`step` and the wire-fed :meth:`control_step`, which is
        what makes loopback replay decision-identical to simulation.
        """
        faults = self.faults
        util = (
            utilization_of
            if utilization_of is not None
            else self._current_utilization
        )
        self.resubscriber.poll(now)
        tap = self.wire_tap
        if tap is not None:
            # End-of-input marker for this tick: everything the control
            # phase may consume (including any resync re-export the
            # poll above just drove) is already on the tap.
            tap.on_util(now, self._utilization_snapshot())

        if (
            self.altpath_every_ticks
            and self._tick_index % self.altpath_every_ticks == 0
        ):
            targets = self.demand.top_prefixes(self.altpath_prefix_count)
            self.altpath.measure_round(targets, utilization_of=util)

        report = None
        if (
            run_controller
            and (faults is None or not faults.controller_down)
            and self._cycle_due(now)
        ):
            report = self.controller.run_cycle(now, utilization_of=util)
            self.record.cycle_reports.append(report)
            self._last_cycle_at = now
            if self.perf is not None:
                self.perf.record_cycle(report.runtime_seconds)
            if self.safety is not None:
                self.safety.check(now, report)
            if self.health is not None:
                self.health.on_cycle(
                    now,
                    report,
                    controller=self.controller,
                    bmp=self.bmp,
                    safety=self.safety,
                    utilization_of=util,
                    ingest=ingest,
                )
        return report

    def control_step(
        self,
        now: float,
        utilization_of=None,
        ingest=None,
    ) -> Optional[CycleReport]:
        """Advance one control tick at externally-fed time *now*.

        The wire-ingest engine calls this once per tick after draining
        its socket queues into the collectors: it is :meth:`step` minus
        the simulator — no synthetic traffic, no in-process exporter
        heartbeats.  *utilization_of* supplies egress-interface
        utilization (replay passes the captured snapshot; free-run
        serving usually has no dataplane and passes nothing, reading
        zero); *ingest* is the engine's stats view for the
        ``ingest_backpressure`` health signal.  Returns the cycle's
        report when a cycle ran.
        """
        step_started = _time.perf_counter()
        self.current_time = now
        self._tick_index += 1
        report = self._control_phase(
            now,
            run_controller=True,
            utilization_of=utilization_of,
            ingest=ingest,
        )
        wall = _time.perf_counter() - step_started
        self._m_ticks.inc()
        self._m_tick_wall.observe(wall)
        if self.perf is not None:
            self.perf.record_tick(wall)
        return report

    def _utilization_snapshot(self) -> Dict:
        """Current utilization of every egress interface, for capture."""
        snapshot: Dict = {}
        utilization_at = self.simulator.metrics.utilization_at
        for router_name, router in self.wired.pop.routers.items():
            for interface_name in router.interfaces:
                key = (router_name, interface_name)
                snapshot[key] = utilization_at(key, self.current_time)
        return snapshot

    def _cycle_due(self, now: float) -> bool:
        if self._last_cycle_at is None:
            return True
        return (
            now - self._last_cycle_at
            >= self.config.cycle_seconds - 1e-9
        )

    def _current_utilization(self, key) -> float:
        return self.simulator.metrics.utilization_at(
            key, self.current_time
        )

    def _currently_detoured_rate(self, result: TickResult) -> Rate:
        """Measured rate of traffic that actually followed injected routes."""
        total = 0.0
        for prefix in self.controller.overrides.active():
            route = result.assignments.get(prefix)
            if route is not None and route.is_injected:
                total += self.sflow.prefix_rate(
                    prefix, self.current_time
                ).bits_per_second
        # Traffic split off by injected more-specifics (the dataplane
        # tracks its exact diverted rate per tick).
        for diverted in result.splits.values():
            for _route, rate in diverted:
                total += rate.bits_per_second
        return Rate(total)

    # -- whole runs ------------------------------------------------------------------

    def run(
        self,
        start: float,
        duration: float,
        run_controller: bool = True,
    ) -> RunRecord:
        """Run from *start* for *duration* seconds."""
        now = start
        end = start + duration
        while now < end:
            self.step(now, run_controller=run_controller)
            now += self.tick_seconds
        return self.record
