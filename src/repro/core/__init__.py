"""Edge Fabric: the egress traffic-engineering controller."""

from .aggregate import InstallIntent, OverrideAggregator
from .allocator import AllocationResult, Allocator, Detour
from .config import ControllerConfig
from .controller import EdgeFabricController
from .fleet import FleetDeployment
from .injector import BgpInjector
from .inputs import ControllerInputs, InputAssembler
from .monitoring import ControllerMonitor, CycleReport
from .overrides import Override, OverrideDiff, OverrideSet
from .perfaware import PerformanceAwarePass
from .pipeline import PopDeployment, RunRecord, TickSummary
from .projection import Placement, Projection, project
from .steering import (
    STEERING_TIERS,
    TIER_GREEN,
    TIER_RED,
    TIER_YELLOW,
    PathHealth,
    SignalVote,
    SteeringEngine,
    TierTransition,
)

__all__ = [
    "InstallIntent",
    "OverrideAggregator",
    "AllocationResult",
    "Allocator",
    "Detour",
    "ControllerConfig",
    "EdgeFabricController",
    "FleetDeployment",
    "BgpInjector",
    "ControllerInputs",
    "InputAssembler",
    "ControllerMonitor",
    "CycleReport",
    "Override",
    "OverrideDiff",
    "OverrideSet",
    "PerformanceAwarePass",
    "PopDeployment",
    "RunRecord",
    "TickSummary",
    "Placement",
    "Projection",
    "project",
    "STEERING_TIERS",
    "TIER_GREEN",
    "TIER_YELLOW",
    "TIER_RED",
    "PathHealth",
    "SignalVote",
    "SteeringEngine",
    "TierTransition",
]
