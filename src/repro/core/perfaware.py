"""Performance-aware routing: detour for latency, not just capacity.

Paper §5: once alternate-path measurement shows that, for some prefixes,
a less-preferred route consistently outperforms the BGP-preferred one,
the controller can override those prefixes *even without overload*.  This
pass runs after the capacity allocator, spends only headroom the
allocator left behind, and is capped per cycle so a measurement glitch
cannot flip half the PoP's routing at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..dataplane.fib import egress_interface
from ..measurement.altpath import AltPathMonitor
from ..netbase.addr import Prefix
from ..netbase.units import Rate
from ..topology.entities import InterfaceKey, PoP
from .allocator import Detour
from .config import ControllerConfig
from .inputs import ControllerInputs

__all__ = ["PerformanceAwarePass"]


@dataclass
class PerformanceAwarePass:
    """Adds performance detours on top of a capacity allocation."""

    pop: PoP
    config: ControllerConfig
    altpath: AltPathMonitor

    def extend(
        self,
        detours: Dict[Prefix, Detour],
        loads: Dict[InterfaceKey, Rate],
        inputs: ControllerInputs,
    ) -> List[Detour]:
        """Mutates *detours*/*loads* in place; returns the added moves.

        Only prefixes not already detoured for capacity are considered;
        moves must keep the target under the utilization threshold.
        """
        added: List[Detour] = []
        threshold = self.config.utilization_threshold
        improvement_needed = self.config.perf_improvement_threshold_ms
        candidates = sorted(
            (
                comparison
                for comparison in self.altpath.comparisons()
                if comparison.median_rtt_delta_ms <= -improvement_needed
            ),
            key=lambda c: c.median_rtt_delta_ms,
        )
        for comparison in candidates:
            if len(added) >= self.config.perf_moves_per_cycle:
                break
            prefix = comparison.prefix
            if prefix in detours:
                continue
            rate = inputs.traffic.get(prefix)
            if rate is None or rate < self.config.min_detour_rate:
                continue
            routes = inputs.routes_of(prefix)
            if not routes:
                continue
            preferred = routes[0]
            target = next(
                (
                    route
                    for route in routes[1:]
                    if route.source.name == comparison.alternate_session
                ),
                None,
            )
            if target is None:
                continue
            from_key = egress_interface(self.pop, preferred)
            to_key = egress_interface(self.pop, target)
            if to_key == from_key:
                continue
            capacity = inputs.capacities.get(to_key)
            if capacity is None or capacity.is_zero():
                continue
            limit = capacity.bits_per_second * threshold
            projected = loads.get(to_key, Rate(0)).bits_per_second
            if projected + rate.bits_per_second > limit:
                continue
            detour = Detour(
                prefix=prefix,
                rate=rate,
                preferred=preferred,
                target=target,
                from_interface=from_key,
                to_interface=to_key,
            )
            detours[prefix] = detour
            loads[from_key] = loads.get(from_key, Rate(0)) - rate
            loads[to_key] = loads.get(to_key, Rate(0)) + rate
            added.append(detour)
        return added
