"""Controller input snapshots with staleness guards.

The controller is only safe if it acts on a current picture of the
network: detouring based on stale traffic can push an interface *into*
overload.  :class:`InputAssembler` gathers one consistent snapshot per
cycle — the multi-route RIB from the BMP collector and per-prefix rates
from the sFlow collector — and refuses (raises
:class:`~repro.netbase.errors.StaleInputError`) when either source is too
old, which the controller turns into a skipped cycle and, after enough
consecutive skips, a fail-static withdrawal of every override.

:meth:`InputAssembler.freshness` exposes the same judgement without the
exception, so health checks and the chaos report can ask "how stale are
we?" outside a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..bgp.route import Route
from ..bmp.collector import BmpCollector
from ..netbase.addr import Prefix
from ..netbase.errors import StaleInputError
from ..netbase.units import Rate
from ..sflow.collector import SflowCollector
from ..topology.entities import InterfaceKey, PoP
from .config import ControllerConfig

__all__ = ["ControllerInputs", "FreshnessReport", "InputAssembler"]


@dataclass(frozen=True)
class FreshnessReport:
    """How old each input source is, against the staleness bound."""

    taken_at: float
    route_age: float
    traffic_age: float
    max_age: float
    #: Extra apparent age applied to both sources (clock-skew faults).
    age_penalty: float = 0.0

    @property
    def routes_stale(self) -> bool:
        return self.route_age > self.max_age

    @property
    def traffic_stale(self) -> bool:
        return self.traffic_age > self.max_age

    @property
    def stale(self) -> bool:
        return self.routes_stale or self.traffic_stale

    @property
    def reason(self) -> str:
        """Operator-facing description of what is stale (or '')."""
        parts = []
        if self.routes_stale:
            parts.append(
                f"route feed is {self.route_age:.0f}s old "
                f"(limit {self.max_age:.0f}s)"
            )
        if self.traffic_stale:
            parts.append(
                "no traffic measurements within the staleness bound"
            )
        return "; ".join(parts)


@dataclass
class ControllerInputs:
    """One cycle's consistent view of routes, traffic and capacity."""

    taken_at: float
    traffic: Dict[Prefix, Rate]
    capacities: Dict[InterfaceKey, Rate]
    _collector: BmpCollector = field(repr=False, default=None)
    freshness: Optional[FreshnessReport] = field(
        repr=False, compare=False, default=None
    )
    #: Prefixes whose routes or rate may differ from the previous
    #: snapshot.  ``None`` means "unknown — treat everything as dirty"
    #: (a full snapshot); an incremental snapshot guarantees every
    #: prefix *not* listed has identical routes and an identical rate.
    dirty_prefixes: Optional[Set[Prefix]] = field(
        repr=False, compare=False, default=None
    )
    #: The subset of :attr:`dirty_prefixes` dirtied by *route* churn
    #: (RIB journal), as opposed to rate movement.  A placed prefix in
    #: here may have gained or lost alternates even if its preferred
    #: route is unchanged.  ``None`` whenever ``dirty_prefixes`` is.
    route_dirty_prefixes: Optional[Set[Prefix]] = field(
        repr=False, compare=False, default=None
    )
    #: Pre-accumulated total of :attr:`traffic` in bits/second,
    #: maintained by the assembler so reporting needn't re-sum the full
    #: table every cycle.  ``None`` falls back to summing.
    _total_bps: Optional[float] = field(
        repr=False, compare=False, default=None
    )

    @property
    def is_full(self) -> bool:
        """True when this snapshot carries no delta information."""
        return self.dirty_prefixes is None

    def routes_of(self, prefix: Prefix) -> List[Route]:
        """Available eBGP routes for *prefix*, decision-ranked.

        Injected routes never appear (the exporter filters the injector's
        sessions and the collector drops INJECTED-tagged announcements),
        so this is the BGP-only view the projection needs.
        """
        return [
            route
            for route in self._collector.routes_for(prefix)
            if not route.is_injected
        ]

    def total_traffic(self) -> Rate:
        if self._total_bps is not None:
            return Rate(self._total_bps)
        return Rate(
            sum(rate.bits_per_second for rate in self.traffic.values())
        )


class InputAssembler:
    """Builds per-cycle snapshots and enforces freshness."""

    def __init__(
        self,
        pop: PoP,
        bmp: BmpCollector,
        sflow: SflowCollector,
        config: ControllerConfig = ControllerConfig(),
    ) -> None:
        self.pop = pop
        self.bmp = bmp
        self.sflow = sflow
        self.config = config
        self._capacities = {
            interface.key: interface.capacity
            for interface in pop.interfaces()
        }
        #: Extra seconds added to both input ages before the staleness
        #: comparison.  Models a skewed/stuck snapshot clock (fault
        #: injection) or a known pipeline delay; 0.0 in normal operation.
        self.input_age_penalty: float = 0.0
        # Incremental-snapshot state: the maintained traffic table, when
        # it was last brought current, which RIB (by identity — a BMP
        # reset swaps the object) and RIB version it reflects, and a
        # running bits/second total.  ``_force_full`` poisons the next
        # snapshot after anything the delta path can't express (capacity
        # edits, external resets).
        self._traffic: Dict[Prefix, Rate] = {}
        self._total_bps: float = 0.0
        self._last_snapshot_at: Optional[float] = None
        self._last_rib_version: int = 0
        self._rib_seen: Optional[int] = None
        self._force_full: bool = True
        #: Diagnostics: how many snapshots took each path.
        self.full_snapshots = 0
        self.incremental_snapshots = 0

    def set_capacity(self, key: InterfaceKey, capacity: Rate) -> None:
        """Update the controller's capacity table for one interface.

        The interface must already be known (capacity changes model
        augments and failures, not new ports); unknown keys raise
        ``KeyError`` rather than silently growing the table.
        """
        if key not in self._capacities:
            raise KeyError(f"unknown interface {key}")
        self._capacities[key] = capacity
        # A capacity change moves threshold bands out from under the
        # incremental projection; make the next cycle start clean.
        self._force_full = True

    def force_full_snapshot(self) -> None:
        """Make the next :meth:`snapshot` take the full path."""
        self._force_full = True

    def capacity_of(self, key: InterfaceKey) -> Rate:
        return self._capacities[key]

    def freshness(self, now: float) -> FreshnessReport:
        """Judge input freshness at *now* without raising."""
        penalty = self.input_age_penalty
        return FreshnessReport(
            taken_at=now,
            route_age=self.bmp.age() + penalty,
            traffic_age=self.sflow.age(now) + penalty,
            max_age=self.config.max_input_age_seconds,
            age_penalty=penalty,
        )

    def snapshot(self, now: float) -> ControllerInputs:
        """Assemble inputs for a cycle starting at *now*.

        With :attr:`ControllerConfig.incremental_engine` on, successive
        snapshots reuse the maintained traffic table and carry a
        ``dirty_prefixes`` delta; anything the delta path cannot express
        (first cycle, BMP reset, journal overflow, capacity edits,
        ``--full-recompute``) falls back to a from-scratch snapshot with
        ``dirty_prefixes=None``.  Either way the traffic dict's contents
        are identical to a full ``sflow.prefix_rates(now)`` pass.

        The returned ``traffic`` mapping is the assembler's live table:
        it is valid until the next ``snapshot`` call and must not be
        mutated by the caller.
        """
        freshness = self.freshness(now)
        if freshness.stale:
            raise StaleInputError(freshness.reason)
        dirty, route_dirty = self._refresh_traffic(now)
        if dirty is None:
            self.full_snapshots += 1
        else:
            self.incremental_snapshots += 1
        self._last_snapshot_at = now
        self._last_rib_version = self.bmp.rib.version
        self._rib_seen = id(self.bmp.rib)
        self._force_full = False
        return ControllerInputs(
            taken_at=now,
            traffic=self._traffic,
            capacities=dict(self._capacities),
            _collector=self.bmp,
            freshness=freshness,
            dirty_prefixes=dirty,
            route_dirty_prefixes=route_dirty,
            _total_bps=self._total_bps,
        )

    def _refresh_traffic(
        self, now: float
    ) -> "Tuple[Optional[Set[Prefix]], Optional[Set[Prefix]]]":
        """Bring the maintained traffic table current.

        Returns ``(dirty, route_dirty)``; both ``None`` when only a
        full rebuild was possible.
        """
        rib = self.bmp.rib
        if (
            not self.config.incremental_engine
            or self._force_full
            or self._last_snapshot_at is None
            or self._rib_seen != id(rib)
        ):
            return self._rebuild_traffic(now)
        changed_rates = self.sflow.changed_prefixes(
            self._last_snapshot_at, now
        )
        if changed_rates is None:
            return self._rebuild_traffic(now)
        changed_routes = rib.changed_since(self._last_rib_version)
        if changed_routes is None:
            return self._rebuild_traffic(now)
        traffic = self._traffic
        total = self._total_bps
        for prefix in changed_rates:
            rate = self.sflow.prefix_rate(prefix, now)
            previous = traffic.get(prefix)
            if previous is not None:
                total -= previous.bits_per_second
            if rate.is_zero():
                if previous is not None:
                    del traffic[prefix]
            else:
                traffic[prefix] = rate
                total += rate.bits_per_second
        self._total_bps = total
        if changed_routes:
            return changed_rates | changed_routes, changed_routes
        return changed_rates, set()

    def _rebuild_traffic(
        self, now: float
    ) -> "Tuple[Optional[Set[Prefix]], Optional[Set[Prefix]]]":
        self._traffic = self.sflow.prefix_rates(now)
        self._total_bps = sum(
            rate.bits_per_second for rate in self._traffic.values()
        )
        return None, None
