"""Controller input snapshots with staleness guards.

The controller is only safe if it acts on a current picture of the
network: detouring based on stale traffic can push an interface *into*
overload.  :class:`InputAssembler` gathers one consistent snapshot per
cycle — the multi-route RIB from the BMP collector and per-prefix rates
from the sFlow collector — and refuses (raises
:class:`~repro.netbase.errors.StaleInputError`) when either source is too
old, which the controller turns into a skipped cycle and, after enough
consecutive skips, a fail-static withdrawal of every override.

:meth:`InputAssembler.freshness` exposes the same judgement without the
exception, so health checks and the chaos report can ask "how stale are
we?" outside a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..bgp.route import Route
from ..bmp.collector import BmpCollector
from ..netbase.addr import Prefix
from ..netbase.errors import StaleInputError
from ..netbase.units import Rate
from ..sflow.collector import SflowCollector
from ..topology.entities import InterfaceKey, PoP
from .config import ControllerConfig

__all__ = ["ControllerInputs", "FreshnessReport", "InputAssembler"]


@dataclass(frozen=True)
class FreshnessReport:
    """How old each input source is, against the staleness bound."""

    taken_at: float
    route_age: float
    traffic_age: float
    max_age: float
    #: Extra apparent age applied to both sources (clock-skew faults).
    age_penalty: float = 0.0

    @property
    def routes_stale(self) -> bool:
        return self.route_age > self.max_age

    @property
    def traffic_stale(self) -> bool:
        return self.traffic_age > self.max_age

    @property
    def stale(self) -> bool:
        return self.routes_stale or self.traffic_stale

    @property
    def reason(self) -> str:
        """Operator-facing description of what is stale (or '')."""
        parts = []
        if self.routes_stale:
            parts.append(
                f"route feed is {self.route_age:.0f}s old "
                f"(limit {self.max_age:.0f}s)"
            )
        if self.traffic_stale:
            parts.append(
                "no traffic measurements within the staleness bound"
            )
        return "; ".join(parts)


@dataclass
class ControllerInputs:
    """One cycle's consistent view of routes, traffic and capacity."""

    taken_at: float
    traffic: Dict[Prefix, Rate]
    capacities: Dict[InterfaceKey, Rate]
    _collector: BmpCollector = field(repr=False, default=None)
    freshness: Optional[FreshnessReport] = field(
        repr=False, compare=False, default=None
    )

    def routes_of(self, prefix: Prefix) -> List[Route]:
        """Available eBGP routes for *prefix*, decision-ranked.

        Injected routes never appear (the exporter filters the injector's
        sessions and the collector drops INJECTED-tagged announcements),
        so this is the BGP-only view the projection needs.
        """
        return [
            route
            for route in self._collector.routes_for(prefix)
            if not route.is_injected
        ]

    def total_traffic(self) -> Rate:
        return Rate(
            sum(rate.bits_per_second for rate in self.traffic.values())
        )


class InputAssembler:
    """Builds per-cycle snapshots and enforces freshness."""

    def __init__(
        self,
        pop: PoP,
        bmp: BmpCollector,
        sflow: SflowCollector,
        config: ControllerConfig = ControllerConfig(),
    ) -> None:
        self.pop = pop
        self.bmp = bmp
        self.sflow = sflow
        self.config = config
        self._capacities = {
            interface.key: interface.capacity
            for interface in pop.interfaces()
        }
        #: Extra seconds added to both input ages before the staleness
        #: comparison.  Models a skewed/stuck snapshot clock (fault
        #: injection) or a known pipeline delay; 0.0 in normal operation.
        self.input_age_penalty: float = 0.0

    def set_capacity(self, key: InterfaceKey, capacity: Rate) -> None:
        """Update the controller's capacity table for one interface.

        The interface must already be known (capacity changes model
        augments and failures, not new ports); unknown keys raise
        ``KeyError`` rather than silently growing the table.
        """
        if key not in self._capacities:
            raise KeyError(f"unknown interface {key}")
        self._capacities[key] = capacity

    def capacity_of(self, key: InterfaceKey) -> Rate:
        return self._capacities[key]

    def freshness(self, now: float) -> FreshnessReport:
        """Judge input freshness at *now* without raising."""
        penalty = self.input_age_penalty
        return FreshnessReport(
            taken_at=now,
            route_age=self.bmp.age() + penalty,
            traffic_age=self.sflow.age(now) + penalty,
            max_age=self.config.max_input_age_seconds,
            age_penalty=penalty,
        )

    def snapshot(self, now: float) -> ControllerInputs:
        """Assemble inputs for a cycle starting at *now*."""
        freshness = self.freshness(now)
        if freshness.stale:
            raise StaleInputError(freshness.reason)
        traffic = self.sflow.prefix_rates(now)
        return ControllerInputs(
            taken_at=now,
            traffic=traffic,
            capacities=dict(self._capacities),
            _collector=self.bmp,
            freshness=freshness,
        )
