"""The fault injector: executes a plan against a live deployment.

One :class:`FaultInjector` wraps one
:class:`~repro.core.pipeline.PopDeployment`.  The pipeline calls
:meth:`on_tick` at the top of every ``step()``; the injector crosses
event boundaries (begin/end) exactly once each and keeps cheap active
state the wrapped paths consult:

- the BMP sink asks :meth:`drops_bmp` before feeding bytes,
- the dataplane simulator routes datagrams through
  :meth:`filter_datagrams` (loss + sampling skew),
- the pipeline skips controller cycles while :attr:`controller_down`,
- link flaps go through the deployment's capacity plumbing, and clock
  skew through the input assembler's age penalty.

Everything probabilistic draws from one ``random.Random(plan.seed)``,
consumed in tick order — the same (plan, deployment, workload) triple
always replays byte-identically.  Every action taken is appended to
:attr:`log` as a picklable :class:`FaultAction` so chaos reports can
print the applied timeline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..netbase.units import Rate
from ..obs.logs import get_logger, log_event
from .plan import FaultEvent, FaultPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.pipeline import PopDeployment

__all__ = ["FaultAction", "FaultInjector"]

_log = get_logger("repro.faults.harness")


@dataclass(frozen=True)
class FaultAction:
    """One thing the injector actually did, at simulation time *time*."""

    time: float
    kind: str
    phase: str  # "begin" | "end" | "pulse"
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "time": self.time,
            "kind": self.kind,
            "phase": self.phase,
            "detail": self.detail,
        }


class FaultInjector:
    """Applies one :class:`FaultPlan` to one deployment, tick by tick."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._events = plan.sorted_events()
        self._begun = [False] * len(self._events)
        self._ended = [False] * len(self._events)
        self.started_at: Optional[float] = None
        #: Simulation time of the most recent tick.
        self.now: float = 0.0

        # Active-fault state, consulted from the wrapped paths.
        self.controller_down = False
        self._bmp_flap_all = 0
        self._bmp_flap_routers: Dict[str, int] = {}
        self._loss_fractions: List[float] = []
        self._skew_factors: List[float] = []
        self._saved_capacity: Dict[int, Tuple[Tuple[str, str], Rate, bool]] = {}

        # Accounting for the chaos report.
        self.log: List[FaultAction] = []
        self.dropped_bmp_bytes = 0
        self.dropped_datagrams = 0
        self.duplicated_datagrams = 0

    # -- lifecycle ------------------------------------------------------------

    def on_tick(self, deployment: "PopDeployment", now: float) -> None:
        """Cross any event boundaries reached by simulation time *now*."""
        if self.started_at is None:
            self.started_at = now
        self.now = now
        rel = now - self.started_at
        for index, event in enumerate(self._events):
            if not self._begun[index] and rel >= event.at:
                self._begun[index] = True
                self._begin(index, event, deployment, now)
            if (
                self._begun[index]
                and not self._ended[index]
                and event.duration > 0.0
                and rel >= event.end
            ):
                self._ended[index] = True
                self._end(index, event, deployment, now)

    def finished(self, now: float) -> bool:
        """True once every scheduled event has begun and ended."""
        if self.started_at is None:
            return not self._events
        rel = now - self.started_at
        return all(
            self._begun[i]
            and (self._events[i].duration == 0.0 or self._ended[i])
            for i in range(len(self._events))
        ) and rel >= self.plan.last_fault_end()

    # -- event transitions ----------------------------------------------------

    def _note(self, now: float, event: FaultEvent, phase: str, detail: str) -> None:
        self.log.append(
            FaultAction(
                time=now, kind=event.kind, phase=phase, detail=detail
            )
        )
        log_event(
            _log,
            "fault." + event.kind,
            time=now,
            phase=phase,
            detail=detail,
        )

    def _begin(
        self,
        index: int,
        event: FaultEvent,
        deployment: "PopDeployment",
        now: float,
    ) -> None:
        kind = event.kind
        if kind == "bmp_flap":
            if event.target:
                count = self._bmp_flap_routers.get(event.target, 0)
                self._bmp_flap_routers[event.target] = count + 1
            else:
                self._bmp_flap_all += 1
            self._note(now, event, "begin", event.target or "all routers")
        elif kind == "bmp_reset":
            deployment.bmp.reset()
            self._note(now, event, "pulse", "collector state lost")
        elif kind == "sflow_loss":
            self._loss_fractions.append(event.magnitude)
            self._note(now, event, "begin", f"loss={event.magnitude:g}")
        elif kind == "sflow_skew":
            self._skew_factors.append(event.magnitude)
            self._note(now, event, "begin", f"skew={event.magnitude:g}")
        elif kind == "link_flap":
            key = self._link_target(event, deployment)
            original = deployment.wired.pop.capacity_of(key)
            degraded = Rate(
                original.bits_per_second * event.magnitude
            )
            self._saved_capacity[index] = (key, original, event.silent)
            deployment.set_interface_capacity(
                key, degraded, notify_controller=not event.silent
            )
            self._note(
                now,
                event,
                "begin",
                f"{key[0]}/{key[1]} -> {degraded}"
                + (" (silent)" if event.silent else ""),
            )
        elif kind == "controller_crash":
            deployment.crash_controller(now)
            self.controller_down = True
            self._note(now, event, "begin", "controller down")
        elif kind == "stale_clock":
            deployment.assembler.input_age_penalty += event.magnitude
            self._note(
                now, event, "begin", f"skew={event.magnitude:g}s"
            )

    def _end(
        self,
        index: int,
        event: FaultEvent,
        deployment: "PopDeployment",
        now: float,
    ) -> None:
        kind = event.kind
        if kind == "bmp_flap":
            if event.target:
                self._bmp_flap_routers[event.target] -= 1
            else:
                self._bmp_flap_all -= 1
            # A re-established BMP session re-sends the initial RIB
            # dump; raising needs_resync asks the resubscription loop
            # to replay it, repairing any updates lost mid-flap.
            deployment.bmp.needs_resync = True
            self._note(now, event, "end", event.target or "all routers")
        elif kind == "sflow_loss":
            self._loss_fractions.remove(event.magnitude)
            self._note(now, event, "end", "")
        elif kind == "sflow_skew":
            self._skew_factors.remove(event.magnitude)
            self._note(now, event, "end", "")
        elif kind == "link_flap":
            key, original, silent = self._saved_capacity.pop(index)
            deployment.set_interface_capacity(
                key, original, notify_controller=not silent
            )
            self._note(
                now, event, "end", f"{key[0]}/{key[1]} restored"
            )
        elif kind == "controller_crash":
            deployment.restart_controller(now)
            self.controller_down = False
            self._note(now, event, "end", "controller restarted")
        elif kind == "stale_clock":
            deployment.assembler.input_age_penalty -= event.magnitude
            self._note(now, event, "end", "")

    @staticmethod
    def _link_target(
        event: FaultEvent, deployment: "PopDeployment"
    ) -> Tuple[str, str]:
        if event.target:
            router, _, interface = event.target.partition("/")
            return (router, interface)
        # Deterministic default: the tightest (smallest) egress link —
        # the one most likely to matter.
        return min(
            deployment.wired.pop.interface_keys(),
            key=lambda key: (
                deployment.wired.pop.capacity_of(key).bits_per_second,
                key,
            ),
        )

    # -- wrapped-path queries -------------------------------------------------

    def drops_bmp(self, router: str) -> bool:
        """Is *router*'s BMP feed currently flapped?"""
        if self._bmp_flap_all:
            return True
        return self._bmp_flap_routers.get(router, 0) > 0

    def note_bmp_dropped(self, router: str, size: int) -> None:
        self.dropped_bmp_bytes += size

    def filter_datagrams(
        self, router: str, datagrams: List[bytes]
    ) -> List[bytes]:
        """Apply active sFlow loss and sampling skew to one batch."""
        if not datagrams or (
            not self._loss_fractions and not self._skew_factors
        ):
            return datagrams
        rng = self._rng
        out: List[bytes] = []
        for datagram in datagrams:
            dropped = False
            for fraction in self._loss_fractions:
                if rng.random() < fraction:
                    dropped = True
            if dropped:
                self.dropped_datagrams += 1
                continue
            copies = 1
            for factor in self._skew_factors:
                whole = int(factor)
                extra = 1 if rng.random() < factor - whole else 0
                copies *= whole + extra
            if copies == 0:
                self.dropped_datagrams += 1
                continue
            out.append(datagram)
            if copies > 1:
                self.duplicated_datagrams += copies - 1
                out.extend(datagram for _ in range(copies - 1))
        return out

    # -- reporting ------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        return {
            "plan_seed": self.plan.seed,
            "events": len(self._events),
            "actions": [action.to_dict() for action in self.log],
            "dropped_bmp_bytes": self.dropped_bmp_bytes,
            "dropped_datagrams": self.dropped_datagrams,
            "duplicated_datagrams": self.duplicated_datagrams,
        }
