"""The chaos report: what broke, how the controller degraded, what held.

Built from a finished deployment after a fault plan ran through it.
Every field is simulation-derived — no wall-clock times, no object ids —
so the same (seed, plan, scenario) triple produces a byte-identical
JSON report, which is exactly the determinism contract ``repro chaos``
and the CI gauntlet assert.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List

__all__ = ["ChaosReport", "build_chaos_report"]


@dataclass(frozen=True)
class ChaosReport:
    """One chaos run, summarized for operators and for CI artifacts."""

    seed: int
    plan: Dict[str, Any]
    #: The injector's applied-action timeline and loss counters.
    faults: Dict[str, Any]
    #: How the controller degraded: cycle outcomes and repair activity.
    degradation: Dict[str, Any]
    #: Safety-invariant outcome: checks run and every violation found.
    safety: Dict[str, Any]
    #: End-of-run routing state (the recovery digest).
    final_state: Dict[str, Any]
    violations: List[Dict[str, Any]] = field(default_factory=list)
    #: Closed-loop steering digest: tier counts, transition totals and
    #: the worst per-key flap rate ({} when the engine is off).
    steering: Dict[str, Any] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "plan": self.plan,
            "faults": self.faults,
            "degradation": self.degradation,
            "safety": self.safety,
            "final_state": self.final_state,
            "violations": self.violations,
            "steering": self.steering,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """Operator-facing text summary."""
        lines: List[str] = []
        degradation = self.degradation
        lines.append(
            f"chaos run (seed {self.seed}): "
            f"{len(self.plan.get('events', []))} scheduled faults, "
            f"{'CLEAN' if self.clean else f'{len(self.violations)} VIOLATIONS'}"
        )
        lines.append("fault timeline:")
        actions = self.faults.get("actions", [])
        if not actions:
            lines.append("  (no fault actions applied)")
        for action in actions:
            lines.append(
                f"  t={action['time']:>9.1f}  "
                f"{action['kind']:<17} {action['phase']:<6} "
                f"{action['detail']}"
            )
        lines.append(
            "degradation: "
            f"{degradation['cycles_run']} cycles run, "
            f"{degradation['cycles_skipped']} skipped on stale inputs, "
            f"{degradation['fail_static_withdrawals']} overrides "
            "withdrawn fail-static"
        )
        lines.append(
            "             "
            f"{degradation['resubscribe_attempts']} resubscribe "
            f"attempts, {degradation['collector_resets']} collector "
            f"resets, {self.faults['dropped_datagrams']} sFlow "
            f"datagrams dropped, {self.faults['dropped_bmp_bytes']} "
            "BMP bytes dropped"
        )
        lines.append(
            "final state: "
            f"{len(self.final_state['active_overrides'])} active "
            f"overrides, {len(self.final_state['injected_prefixes'])} "
            "injected prefixes, offered "
            f"{self.final_state['offered_bps'] / 1e9:.2f} Gbps, "
            f"dropped {self.final_state['dropped_bps'] / 1e9:.3f} Gbps"
        )
        if self.steering:
            tiers = self.steering.get("tier_counts", {})
            lines.append(
                "steering:    "
                f"GREEN={tiers.get('GREEN', 0)} "
                f"YELLOW={tiers.get('YELLOW', 0)} "
                f"RED={tiers.get('RED', 0)}, "
                f"{self.steering.get('transitions_total', 0)} tier "
                "transitions, worst flap rate "
                f"{self.steering.get('max_flap_rate', 0.0):.1f}/100 "
                "cycles"
            )
        if self.violations:
            lines.append("violations:")
            for violation in self.violations:
                lines.append(
                    f"  t={violation['time']:>9.1f}  "
                    f"{violation['invariant']:<24} "
                    f"{violation['subject']}: {violation['message']}"
                )
        else:
            lines.append(
                "safety: all "
                f"{self.safety['checks_run']} post-cycle checks passed"
            )
        return "\n".join(lines)


def build_chaos_report(deployment, injector=None) -> ChaosReport:
    """Summarize a finished run of *deployment* under *injector*'s plan.

    *injector* defaults to the deployment's attached fault injector; a
    fault-free deployment yields a report with an empty timeline (useful
    as the recovery-comparison baseline).
    """
    faults = injector if injector is not None else deployment.faults
    if faults is not None:
        plan_dict = faults.plan.to_dict()
        fault_summary = faults.summary()
        seed = faults.plan.seed
    else:
        plan_dict = {"seed": 0, "events": []}
        fault_summary = {
            "plan_seed": 0,
            "events": 0,
            "actions": [],
            "dropped_bmp_bytes": 0,
            "dropped_datagrams": 0,
            "duplicated_datagrams": 0,
        }
        seed = 0

    reports = deployment.record.cycle_reports
    skipped = [r for r in reports if r.skipped]
    degradation = {
        "cycles_run": len(reports) - len(skipped),
        "cycles_skipped": len(skipped),
        "fail_static_withdrawals": sum(r.withdrawn for r in skipped),
        "resubscribe_attempts": deployment.resubscriber.total_attempts,
        "collector_resets": deployment.bmp.resets,
        "final_stale_cycles": deployment.controller.stale_cycles,
    }

    safety: Dict[str, Any]
    violations: List[Dict[str, Any]] = []
    if deployment.safety is not None:
        safety = deployment.safety.summary()
        violations = list(safety["violations"])
    else:
        safety = {"checks_run": 0, "violations": []}

    last_tick = (
        deployment.record.ticks[-1] if deployment.record.ticks else None
    )
    final_state = {
        "active_overrides": sorted(
            str(p) for p in deployment.controller.overrides.active()
        ),
        "injected_prefixes": [
            str(p) for p in deployment.injector.injected_prefixes()
        ],
        "offered_bps": (
            last_tick.offered.bits_per_second if last_tick else 0.0
        ),
        "dropped_bps": (
            last_tick.dropped.bits_per_second if last_tick else 0.0
        ),
        "time": last_tick.time if last_tick else 0.0,
    }

    engine = getattr(deployment.controller, "steering", None)
    steering: Dict[str, Any] = {}
    if engine is not None:
        rates = engine.flap_rates()
        steering = {
            "cycles": engine.cycles,
            "keys": len(rates),
            "tier_counts": engine.tier_counts(),
            "transitions_total": len(engine.transitions),
            "max_flap_rate": max(rates.values(), default=0.0),
        }

    return ChaosReport(
        seed=seed,
        plan=plan_dict,
        faults=fault_summary,
        degradation=degradation,
        safety=safety,
        final_state=final_state,
        violations=violations,
        steering=steering,
    )
