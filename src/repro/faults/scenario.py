"""A small, fast deployment purpose-built for chaos runs.

The chaos gauntlet runs whole fault plans end to end across dozens of
seeds, so scenario size is the budget: the canonical study PoPs take
seconds to build and step, this one builds in ~0.3s and ticks in
milliseconds while keeping everything the fault paths exercise — one
router with transit, private, and IXP egress; a tight peer that actually
overloads at peak (so overrides exist for faults to threaten); real BMP,
sFlow, injector and controller wiring.
"""

from __future__ import annotations

from typing import Optional

from ..core.config import ControllerConfig
from ..core.pipeline import PopDeployment
from ..netbase.units import gbps
from ..topology.builder import PopSpec, build_pop, provision_against_demand
from ..topology.internet import InternetConfig, InternetTopology
from ..traffic.demand import DemandConfig, DemandModel

__all__ = ["CHAOS_TICK_SECONDS", "build_chaos_deployment"]

#: Tick/cycle period for chaos runs — the paper's 30-second loop.
CHAOS_TICK_SECONDS = 30.0


def build_chaos_deployment(
    seed: int = 0,
    faults=None,
    safety_checks: bool = True,
    controller_config: Optional[ControllerConfig] = None,
    tick_seconds: float = CHAOS_TICK_SECONDS,
    health_checks: bool = False,
    slo_spec=None,
    steering: bool = False,
    **deployment_kwargs,
) -> PopDeployment:
    """One small PoP with the full stack, ready for fault plans.

    Extra keyword arguments pass through to :class:`PopDeployment`
    (e.g. ``wire_tap=...`` to record a capture, or
    ``external_ingest=True`` for a socket-fed replay twin).

    Deterministic per *seed*: topology, demand and sampling all derive
    from it, so two builds with the same seed step identically.

    ``steering=True`` arms the closed-loop performance-aware engine:
    the controller runs with ``performance_aware`` on (v2 mode) and the
    deployment drives an alternate-path measurement round every other
    tick, which is what the steering-stability gauntlet exercises.
    """
    internet = InternetTopology(
        InternetConfig(
            seed=seed, tier1_count=2, tier2_count=6, stub_count=48
        )
    )
    spec = PopSpec(
        name="chaos-mini",
        seed=seed,
        router_count=1,
        transit_count=1,
        private_peer_count=3,
        public_peer_count=4,
        route_server_member_count=6,
        expected_peak=gbps(40),
        tight_peer_count=1,
    )
    wired = build_pop(spec, internet)
    demand = DemandModel(
        internet.all_prefixes(),
        DemandConfig(
            seed=seed + 1,
            peak_total=gbps(40),
            tick_seconds=tick_seconds,
        ),
        popular=wired.popular_prefixes(),
    )
    provision_against_demand(
        wired,
        demand.weight_of,
        expected_peak=gbps(40),
        headroom=spec.private_headroom,
        tight_headroom=spec.tight_headroom,
        tight_peer_count=spec.tight_peer_count,
        seed=seed + 2,
    )
    config = controller_config or ControllerConfig(
        cycle_seconds=tick_seconds,
        # Tight degradation timings so short chaos runs cross every
        # threshold: inputs go stale after two quiet cycles, fail-static
        # fires one cycle later, resubscription retries each cycle.
        max_input_age_seconds=2.0 * tick_seconds,
        fail_static_after_cycles=2,
        resubscribe_initial_seconds=tick_seconds,
        resubscribe_max_attempts=4,
        performance_aware=steering,
    )
    altpath_kwargs = {}
    if steering:
        altpath_kwargs = dict(
            altpath_every_ticks=2, altpath_prefix_count=60
        )
    return PopDeployment(
        wired,
        demand,
        controller_config=config,
        tick_seconds=tick_seconds,
        sampling_rate=4096,
        seed=seed,
        faults=faults,
        safety_checks=safety_checks,
        health_checks=health_checks,
        slo_spec=slo_spec,
        **altpath_kwargs,
        **deployment_kwargs,
    )
