"""Deterministic fault injection for the Edge Fabric pipeline.

Edge Fabric's central safety claim is that the controller *fails
static*: when inputs go stale or the controller dies, injected
overrides are withdrawn and routing falls back to vanilla BGP.  This
package makes that claim testable.  A seeded :class:`FaultPlan`
describes *what* breaks and *when* (BMP feed flaps and resets, sFlow
datagram loss and sampling skew, link capacity flaps, controller
crash/restart, clock-skewed input snapshots); a :class:`FaultInjector`
threads the plan through a :class:`~repro.core.pipeline.PopDeployment`
tick by tick, wrapping the BMP sink, the sFlow datagram path, the
dataplane capacities and the controller loop — with zero cost on the
hot path when no injector is attached.

The graceful-degradation counterpart (freshness guards, fail-static
withdrawal, bounded resubscription backoff, the
:class:`~repro.core.safety.SafetyChecker`) lives in :mod:`repro.core`;
this package only breaks things, deterministically.
"""

from .harness import FaultAction, FaultInjector
from .plan import FaultEvent, FaultPlan
from .report import ChaosReport, build_chaos_report
from .scenario import build_chaos_deployment
from .stability import (
    STABILITY_FAULT_KINDS,
    StabilityReport,
    run_stability_trial,
)

__all__ = [
    "FaultAction",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "ChaosReport",
    "build_chaos_report",
    "build_chaos_deployment",
    "STABILITY_FAULT_KINDS",
    "StabilityReport",
    "run_stability_trial",
]
