"""The fault-plan DSL: a seeded, serializable schedule of failures.

A :class:`FaultPlan` is an ordered set of :class:`FaultEvent` entries,
each naming a fault kind, when it starts (seconds after the run
begins), how long it lasts, what it targets and how hard it hits.  The
plan is pure data: building one touches no live objects, so plans can
be written by hand, stored as JSON next to an experiment, or generated
from a seed (:meth:`FaultPlan.random`) for chaos gauntlets.  The
:class:`~repro.faults.harness.FaultInjector` interprets the plan
against a live deployment.

Times are relative to the start of the run (the injector binds the
absolute start time on its first tick), so one plan replays against
any workload window.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..netbase.errors import ReproError

__all__ = ["FaultKind", "FaultEvent", "FaultPlan", "FaultPlanError"]


class FaultPlanError(ReproError):
    """A fault plan was malformed or internally inconsistent."""


#: Every fault kind the injector understands.
FaultKind = str

FAULT_KINDS: Tuple[str, ...] = (
    "bmp_flap",
    "bmp_reset",
    "sflow_loss",
    "sflow_skew",
    "link_flap",
    "controller_crash",
    "stale_clock",
)

#: Kinds that are instantaneous (duration is ignored / must be 0).
_POINT_KINDS = frozenset({"bmp_reset"})


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``at`` and ``duration`` are seconds relative to run start.
    ``target`` selects what breaks — a router name for BMP faults, a
    ``"router/interface"`` key for link flaps — and the empty string
    means "let the injector pick deterministically" (all routers for
    feed faults, the smallest-capacity egress for link flaps).
    ``magnitude`` is kind-specific: loss fraction for ``sflow_loss``,
    sampling-skew factor for ``sflow_skew``, capacity factor for
    ``link_flap`` (0.0 = link down), and skew seconds for
    ``stale_clock``.
    """

    kind: FaultKind
    at: float
    duration: float = 0.0
    target: str = ""
    magnitude: float = 0.0
    #: Link flaps only: when True the dataplane capacity changes but
    #: the controller's capacity table is *not* updated — modeling a
    #: degradation nobody told the control plane about.
    silent: bool = False

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {FAULT_KINDS}"
            )
        if self.at < 0.0:
            raise FaultPlanError(f"{self.kind}: start time must be >= 0")
        if self.duration < 0.0:
            raise FaultPlanError(f"{self.kind}: duration must be >= 0")
        if self.kind in _POINT_KINDS and self.duration != 0.0:
            raise FaultPlanError(f"{self.kind} is instantaneous")
        if self.kind == "sflow_loss" and not 0.0 <= self.magnitude <= 1.0:
            raise FaultPlanError("sflow_loss fraction must be in [0, 1]")
        if self.kind == "sflow_skew" and self.magnitude <= 0.0:
            raise FaultPlanError("sflow_skew factor must be positive")
        if self.kind == "link_flap" and self.magnitude < 0.0:
            raise FaultPlanError("link_flap capacity factor must be >= 0")
        if self.kind == "stale_clock" and self.magnitude <= 0.0:
            raise FaultPlanError("stale_clock skew must be positive")
        if self.kind == "controller_crash" and self.duration <= 0.0:
            raise FaultPlanError(
                "controller_crash needs a positive restart delay"
            )

    @property
    def end(self) -> float:
        return self.at + self.duration

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "at": self.at,
            "duration": self.duration,
            "target": self.target,
            "magnitude": self.magnitude,
            "silent": self.silent,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultEvent":
        try:
            kind = str(data["kind"])
            at = float(data["at"])
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultPlanError(f"bad fault event {data!r}") from exc
        return cls(
            kind=kind,
            at=at,
            duration=float(data.get("duration", 0.0)),
            target=str(data.get("target", "")),
            magnitude=float(data.get("magnitude", 0.0)),
            silent=bool(data.get("silent", False)),
        )


@dataclass
class FaultPlan:
    """A seeded schedule of faults, with a builder-style DSL.

    The seed drives every probabilistic choice the injector makes while
    executing the plan (which datagrams drop, which samples duplicate),
    so one (plan, deployment) pair always replays identically.
    """

    seed: int = 0
    events: List[FaultEvent] = field(default_factory=list)

    # -- builder DSL ---------------------------------------------------------

    def _add(self, event: FaultEvent) -> "FaultPlan":
        self.events.append(event)
        return self

    def bmp_flap(
        self, at: float, duration: float, router: str = ""
    ) -> "FaultPlan":
        """Silence a router's BMP feed for a window (bytes dropped)."""
        return self._add(
            FaultEvent("bmp_flap", at, duration, target=router)
        )

    def bmp_reset(self, at: float) -> "FaultPlan":
        """Reset the BMP collector: RIB and liveness state lost."""
        return self._add(FaultEvent("bmp_reset", at))

    def sflow_loss(
        self, at: float, duration: float, fraction: float
    ) -> "FaultPlan":
        """Drop each sFlow datagram with probability *fraction*."""
        return self._add(
            FaultEvent("sflow_loss", at, duration, magnitude=fraction)
        )

    def sflow_skew(
        self, at: float, duration: float, factor: float
    ) -> "FaultPlan":
        """Skew sampling by *factor* (0.5 halves, 2.0 doubles counts)."""
        return self._add(
            FaultEvent("sflow_skew", at, duration, magnitude=factor)
        )

    def link_flap(
        self,
        at: float,
        duration: float,
        interface: str = "",
        capacity_factor: float = 0.0,
        silent: bool = False,
    ) -> "FaultPlan":
        """Scale an egress interface's capacity for a window.

        *interface* is ``"router/name"``; empty picks the
        smallest-capacity egress deterministically.
        """
        return self._add(
            FaultEvent(
                "link_flap",
                at,
                duration,
                target=interface,
                magnitude=capacity_factor,
                silent=silent,
            )
        )

    def controller_crash(
        self, at: float, restart_after: float
    ) -> "FaultPlan":
        """Kill the controller (sessions drop, memory lost); restart later."""
        return self._add(
            FaultEvent("controller_crash", at, duration=restart_after)
        )

    def stale_clock(
        self, at: float, duration: float, skew_seconds: float
    ) -> "FaultPlan":
        """Make input snapshots look *skew_seconds* older than they are."""
        return self._add(
            FaultEvent(
                "stale_clock", at, duration, magnitude=skew_seconds
            )
        )

    # -- queries -------------------------------------------------------------

    def sorted_events(self) -> List[FaultEvent]:
        return sorted(
            self.events, key=lambda e: (e.at, e.kind, e.target)
        )

    def last_fault_end(self) -> float:
        """When the last scheduled disturbance is over."""
        return max((event.end for event in self.events), default=0.0)

    def __len__(self) -> int:
        return len(self.events)

    def shifted(self, offset: float) -> "FaultPlan":
        """A copy with every event moved *offset* seconds later."""
        return FaultPlan(
            seed=self.seed,
            events=[
                replace(event, at=event.at + offset)
                for event in self.events
            ],
        )

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "events": [
                event.to_dict() for event in self.sorted_events()
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        events_raw = data.get("events", [])
        if not isinstance(events_raw, list):
            raise FaultPlanError("plan 'events' must be a list")
        return cls(
            seed=int(data.get("seed", 0)),
            events=[
                FaultEvent.from_dict(entry) for entry in events_raw
            ],
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"plan is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise FaultPlanError("plan JSON must be an object")
        return cls.from_dict(data)

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    # -- seeded generation ---------------------------------------------------

    @classmethod
    def random(
        cls,
        seed: int,
        duration: float,
        kinds: Optional[Iterable[str]] = None,
        min_events: int = 3,
        max_events: int = 6,
        recovery_fraction: float = 0.35,
    ) -> "FaultPlan":
        """A seeded random plan over a run of *duration* seconds.

        Every fault starts and ends inside the first
        ``1 - recovery_fraction`` of the run, so the tail is a clean
        recovery window the chaos gauntlet can assert convergence over.
        """
        if duration <= 0.0:
            raise FaultPlanError("duration must be positive")
        rng = random.Random(seed)
        usable = duration * (1.0 - recovery_fraction)
        pool = tuple(kinds) if kinds is not None else FAULT_KINDS
        for kind in pool:
            if kind not in FAULT_KINDS:
                raise FaultPlanError(f"unknown fault kind {kind!r}")
        plan = cls(seed=seed)
        count = rng.randint(min_events, max_events)
        for _ in range(count):
            kind = rng.choice(pool)
            at = rng.uniform(0.05 * usable, 0.6 * usable)
            window = rng.uniform(0.1 * usable, usable - at)
            if kind == "bmp_flap":
                plan.bmp_flap(at, window)
            elif kind == "bmp_reset":
                plan.bmp_reset(at)
            elif kind == "sflow_loss":
                plan.sflow_loss(at, window, rng.uniform(0.3, 1.0))
            elif kind == "sflow_skew":
                plan.sflow_skew(
                    at, window, rng.choice((0.25, 0.5, 2.0, 4.0))
                )
            elif kind == "link_flap":
                plan.link_flap(
                    at,
                    window,
                    capacity_factor=rng.choice((0.0, 0.25, 0.5)),
                )
            elif kind == "controller_crash":
                plan.controller_crash(
                    at, restart_after=max(60.0, 0.3 * window)
                )
            elif kind == "stale_clock":
                plan.stale_clock(
                    at, window, skew_seconds=rng.uniform(100.0, 600.0)
                )
        return plan
