"""Steering-stability trials: prove the closed loop never flaps.

The v2 steering engine's contract is hysteresis: measurement noise and
transient faults may move a ⟨prefix, path⟩ key's tier, but no key may
*oscillate* — its tier-transition rate must stay inside the configured
flap budget even while the chaos plans the gauntlet already runs
(``sflow_skew`` sampling distortion, ``link_flap`` capacity dips) are
hammering the signals the engine votes on.  This module is that trial:
one seeded fault plan of a single kind, one steering-armed chaos
deployment, one machine-readable verdict per run.  The
``steering-stability`` CI job sweeps it over seeds and fails on any
budget breach, uploading each :class:`StabilityReport` as an artifact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from .harness import FaultInjector
from .plan import FaultPlan
from .scenario import build_chaos_deployment

__all__ = [
    "STABILITY_FAULT_KINDS",
    "STABILITY_DURATION",
    "StabilityReport",
    "run_stability_trial",
]

#: The fault kinds the stability gate exercises: both distort the
#: signals steering votes on (rates and queue pressure) without taking
#: the control plane down, which is exactly where a flappy loop would
#: oscillate.
STABILITY_FAULT_KINDS: Tuple[str, ...] = ("sflow_skew", "link_flap")

#: 60 cycles of 30 s — long enough for trips, dwell and recovery.
STABILITY_DURATION = 1800.0


@dataclass(frozen=True)
class StabilityReport:
    """One steering-stability trial, summarized for CI artifacts."""

    seed: int
    fault_kind: str
    plan: Dict[str, Any]
    cycles: int
    #: Tier population at end of run.
    tier_counts: Dict[str, int]
    #: Whole-run tier transitions per 100 observed cycles, per key
    #: (``"prefix via session"`` → rate).
    flap_rates: Dict[str, float]
    #: The budget a key's rate must not exceed (transitions per
    #: ``steering_flap_window_cycles`` cycles, normalized to 100).
    flap_budget: float
    #: Keys whose rate exceeded the budget — a clean run has none.
    breaches: Dict[str, float]
    #: Every tier transition the engine recorded, with its votes.
    transitions: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.breaches

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "fault_kind": self.fault_kind,
            "plan": self.plan,
            "cycles": self.cycles,
            "tier_counts": self.tier_counts,
            "flap_rates": self.flap_rates,
            "flap_budget": self.flap_budget,
            "breaches": self.breaches,
            "transitions": self.transitions,
            "clean": self.clean,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        tiers = self.tier_counts
        lines = [
            f"steering stability (seed {self.seed}, {self.fault_kind}): "
            f"{'CLEAN' if self.clean else f'{len(self.breaches)} BREACHES'}",
            f"  {self.cycles} steering cycles, tiers "
            f"GREEN={tiers.get('GREEN', 0)} "
            f"YELLOW={tiers.get('YELLOW', 0)} "
            f"RED={tiers.get('RED', 0)}, "
            f"{len(self.transitions)} transitions, budget "
            f"{self.flap_budget:.0f}/100 cycles",
        ]
        for key, rate in sorted(self.breaches.items()):
            lines.append(f"  BREACH {key}: {rate:.1f}/100 cycles")
        return "\n".join(lines)


def run_stability_trial(
    seed: int,
    fault_kind: str,
    duration: float = STABILITY_DURATION,
) -> StabilityReport:
    """Run one steering-armed chaos deployment under *fault_kind*.

    The plan is ``FaultPlan.random`` restricted to the one kind, so the
    trial inherits the gauntlet's seeding and recovery-window shape.
    Returns the per-key flap verdict; the caller asserts ``clean``.
    """
    if fault_kind not in STABILITY_FAULT_KINDS:
        raise ValueError(
            f"fault_kind must be one of {STABILITY_FAULT_KINDS}, "
            f"got {fault_kind!r}"
        )
    plan = FaultPlan.random(seed, duration=duration, kinds=(fault_kind,))
    injector = FaultInjector(plan)
    deployment = build_chaos_deployment(
        seed=seed,
        faults=injector,
        safety_checks=True,
        health_checks=True,
        steering=True,
    )
    start = deployment.demand.config.peak_time
    ticks = int(duration / deployment.tick_seconds)
    for index in range(ticks):
        deployment.step(start + index * deployment.tick_seconds)

    engine = deployment.controller.steering
    assert engine is not None  # steering=True armed the closed loop
    config = engine.config
    # Normalize the configured budget to per-100-cycles so reports are
    # comparable across window settings.
    budget = (
        config.steering_flap_budget
        * 100.0
        / config.steering_flap_window_cycles
    )
    rates = {
        f"{prefix} via {path}": rate
        for (prefix, path), rate in engine.flap_rates().items()
    }
    breaches = {
        key: rate for key, rate in rates.items() if rate > budget
    }
    return StabilityReport(
        seed=seed,
        fault_kind=fault_kind,
        plan=plan.to_dict(),
        cycles=engine.cycles,
        tier_counts=engine.tier_counts(),
        flap_rates=rates,
        flap_budget=budget,
        breaches=breaches,
        transitions=[t.to_dict() for t in engine.transitions],
    )
