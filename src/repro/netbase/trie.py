"""Binary radix trie keyed by IP prefix, with longest-prefix match.

The forwarding simulator resolves every destination address through a FIB,
and the controller resolves sFlow samples back to the covering routed
prefix; both need longest-prefix match over tens of thousands of prefixes,
so a proper path-compressed radix trie matters here.

One trie instance holds one address family.  :class:`PrefixMap` bundles a
v4 and a v6 trie behind a dict-like interface, which is what most callers
use.
"""

from __future__ import annotations

from typing import Generic, Iterator, Optional, Tuple, TypeVar

from .addr import Family, Prefix
from .errors import AddressError

__all__ = ["RadixTrie", "PrefixMap"]

V = TypeVar("V")


class _Node(Generic[V]):
    """A path-compressed trie node covering ``prefix``.

    ``value`` is set only for nodes that represent inserted prefixes;
    intermediate branch nodes carry ``has_value = False``.
    """

    __slots__ = ("prefix", "value", "has_value", "left", "right")

    def __init__(self, prefix: Prefix) -> None:
        self.prefix = prefix
        self.value: Optional[V] = None
        self.has_value = False
        self.left: Optional["_Node[V]"] = None
        self.right: Optional["_Node[V]"] = None


def _bit_at(family: Family, network: int, index: int) -> int:
    """The bit of *network* at position *index* (0 = most significant)."""
    return (network >> (family.max_length - 1 - index)) & 1


def _common_length(a: Prefix, b: Prefix) -> int:
    """Length of the longest common prefix of two networks."""
    max_len = a.family.max_length
    limit = min(a.length, b.length)
    diff = (a.network ^ b.network) >> (max_len - limit) if limit else 0
    if diff == 0:
        return limit
    return limit - diff.bit_length()


class RadixTrie(Generic[V]):
    """Path-compressed binary trie over one address family.

    >>> trie = RadixTrie(Family.IPV4)
    >>> trie[Prefix.parse("10.0.0.0/8")] = "coarse"
    >>> trie[Prefix.parse("10.1.0.0/16")] = "fine"
    >>> trie.longest_match(Prefix.parse("10.1.2.0/24"))
    (Prefix('10.1.0.0/16'), 'fine')
    """

    def __init__(self, family: Family) -> None:
        self._family = family
        self._root: Optional[_Node[V]] = None
        self._size = 0
        # Exact-match index: every *inserted* prefix (has_value nodes
        # only, never branch nodes) maps straight to its node.  Exact
        # get/contains are the controller's hottest trie operation at
        # full-table scale; the index makes them one dict probe instead
        # of a bit-walk, while LPM and subtree iteration still use the
        # tree structure.
        self._nodes: dict[Prefix, _Node[V]] = {}

    @property
    def family(self) -> Family:
        return self._family

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    # -- mutation ------------------------------------------------------------

    def insert(self, prefix: Prefix, value: V) -> None:
        """Insert or replace the value stored at *prefix*."""
        self._check_family(prefix)
        existing = self._nodes.get(prefix)
        if existing is not None:
            # Replacement: the index guarantees has_value is already set.
            existing.value = value
            return
        if self._root is None:
            node: _Node[V] = _Node(prefix)
            node.value, node.has_value = value, True
            self._root = node
            self._size = 1
            self._nodes[prefix] = node
            return
        # Iterative descent (the insert path runs ~1.4M times building a
        # full-table RIB; recursion overhead is measurable there).
        parent: Optional[_Node[V]] = None
        parent_bit = 0
        node = self._root
        while True:
            common = _common_length(node.prefix, prefix)
            if common < node.prefix.length:
                # Split: make a branch node covering the common part.
                branch_prefix = Prefix.from_address(
                    prefix.family, prefix.network, common
                )
                branch: _Node[V] = _Node(branch_prefix)
                node_bit = _bit_at(
                    prefix.family, node.prefix.network, common
                )
                if common == prefix.length:
                    # The new prefix *is* the branch point.
                    branch.value, branch.has_value = value, True
                    self._nodes[prefix] = branch
                else:
                    leaf: _Node[V] = _Node(prefix)
                    leaf.value, leaf.has_value = value, True
                    self._nodes[prefix] = leaf
                    if node_bit:
                        branch.left = leaf
                    else:
                        branch.right = leaf
                if node_bit:
                    branch.right = node
                else:
                    branch.left = node
                self._size += 1
                if parent is None:
                    self._root = branch
                elif parent_bit:
                    parent.right = branch
                else:
                    parent.left = branch
                return
            if prefix.length == node.prefix.length:
                # An existing branch node becomes a value node (an index
                # hit would have taken the replacement fast path above).
                if not node.has_value:
                    self._size += 1
                node.value, node.has_value = value, True
                self._nodes[prefix] = node
                return
            # Descend: prefix is strictly longer and node covers it.
            bit = _bit_at(prefix.family, prefix.network, node.prefix.length)
            child = node.right if bit else node.left
            if child is None:
                leaf = _Node(prefix)
                leaf.value, leaf.has_value = value, True
                self._size += 1
                self._nodes[prefix] = leaf
                if bit:
                    node.right = leaf
                else:
                    node.left = leaf
                return
            parent, parent_bit = node, bit
            node = child

    def delete(self, prefix: Prefix) -> V:
        """Remove *prefix*, returning its value.  Raises KeyError if absent."""
        self._check_family(prefix)
        if prefix not in self._nodes:
            raise KeyError(str(prefix))
        path: list[Tuple[Optional[_Node[V]], int]] = []
        node = self._root
        while node is not None:
            common = _common_length(node.prefix, prefix)
            if common < node.prefix.length or node.prefix.length > prefix.length:
                node = None
                break
            if node.prefix.length == prefix.length:
                break
            bit = _bit_at(prefix.family, prefix.network, node.prefix.length)
            path.append((node, bit))
            node = node.right if bit else node.left
        if node is None or not node.has_value or node.prefix != prefix:
            raise KeyError(str(prefix))
        value = node.value
        node.value, node.has_value = None, False
        del self._nodes[prefix]
        self._size -= 1
        self._prune(node, path)
        return value  # type: ignore[return-value]

    def _prune(
        self,
        node: _Node[V],
        path: list[Tuple[Optional[_Node[V]], int]],
    ) -> None:
        """Collapse now-redundant branch nodes after a deletion."""
        child_count = (node.left is not None) + (node.right is not None)
        replacement: Optional[_Node[V]]
        if child_count == 2:
            return
        if child_count == 1:
            replacement = node.left if node.left is not None else node.right
        else:
            replacement = None
        if not path:
            self._root = replacement
            return
        parent, bit = path[-1]
        assert parent is not None
        if bit:
            parent.right = replacement
        else:
            parent.left = replacement
        if (
            replacement is None
            and not parent.has_value
            and parent is not self._root
        ):
            self._prune(parent, path[:-1])

    def clear(self) -> None:
        self._root = None
        self._size = 0
        self._nodes.clear()

    # -- dict-style access -----------------------------------------------------

    def __setitem__(self, prefix: Prefix, value: V) -> None:
        self.insert(prefix, value)

    def __getitem__(self, prefix: Prefix) -> V:
        self._check_family(prefix)
        node = self._nodes.get(prefix)
        if node is None:
            raise KeyError(str(prefix))
        return node.value  # type: ignore[return-value]

    def __contains__(self, prefix: Prefix) -> bool:
        self._check_family(prefix)
        return prefix in self._nodes

    def get(self, prefix: Prefix, default: Optional[V] = None) -> Optional[V]:
        """Exact-match lookup (one index probe, no tree walk)."""
        self._check_family(prefix)
        node = self._nodes.get(prefix)
        if node is not None:
            return node.value
        return default

    # -- longest-prefix match ---------------------------------------------------

    def longest_match(self, target: Prefix) -> Optional[Tuple[Prefix, V]]:
        """The most specific inserted prefix covering *target*, if any."""
        self._check_family(target)
        best: Optional[Tuple[Prefix, V]] = None
        node = self._root
        while node is not None:
            common = _common_length(node.prefix, target)
            if common < node.prefix.length or node.prefix.length > target.length:
                break
            if node.has_value:
                best = (node.prefix, node.value)  # type: ignore[arg-type]
            if node.prefix.length == target.length:
                break
            bit = _bit_at(target.family, target.network, node.prefix.length)
            node = node.right if bit else node.left
        return best

    def lookup_address(self, address: int) -> Optional[Tuple[Prefix, V]]:
        """Longest-prefix match for a host address."""
        host = Prefix.from_address(
            self._family, address, self._family.max_length
        )
        return self.longest_match(host)

    # -- iteration ----------------------------------------------------------------

    def items(self) -> Iterator[Tuple[Prefix, V]]:
        """All (prefix, value) pairs in lexicographic prefix order."""
        stack: list[_Node[V]] = []
        if self._root is not None:
            stack.append(self._root)
        while stack:
            node = stack.pop()
            if node.has_value:
                yield node.prefix, node.value  # type: ignore[misc]
            # Push right first so left (lower networks) pops first.
            if node.right is not None:
                stack.append(node.right)
            if node.left is not None:
                stack.append(node.left)

    def keys(self) -> Iterator[Prefix]:
        for prefix, _value in self.items():
            yield prefix

    def __iter__(self) -> Iterator[Prefix]:
        return self.keys()

    def subtree(self, covering: Prefix) -> Iterator[Tuple[Prefix, V]]:
        """All inserted prefixes equal to or more specific than *covering*.

        Yields in deterministic pre-order — a covering prefix before the
        prefixes under it, lower networks before higher — which for
        prefixes is exactly lexicographic (:class:`Prefix` sort) order.
        The order is a function of the stored key *set* only: a
        path-compressed trie's shape is canonical for its keys, so two
        tries built from the same prefixes in any insertion order
        iterate identically.  Aggregation (``repro.core.aggregate``)
        depends on this determinism for twin-run equivalence.
        """
        self._check_family(covering)
        node = self._root
        while node is not None and node.prefix.length < covering.length:
            common = _common_length(node.prefix, covering)
            if common < node.prefix.length:
                return
            bit = _bit_at(covering.family, covering.network, node.prefix.length)
            node = node.right if bit else node.left
        if node is None or not covering.covers(node.prefix):
            return
        stack = [node]
        while stack:
            current = stack.pop()
            if current.has_value:
                yield current.prefix, current.value  # type: ignore[misc]
            if current.right is not None:
                stack.append(current.right)
            if current.left is not None:
                stack.append(current.left)

    def covered_by(self, covering: Prefix) -> Iterator[Tuple[Prefix, V]]:
        """Alias of :meth:`subtree` (the historical name)."""
        return self.subtree(covering)

    def matches(self, target: Prefix) -> Iterator[Tuple[Prefix, V]]:
        """All inserted prefixes covering *target*, least specific first.

        The full covering chain a longest-prefix match walks through;
        ``list(matches(t))[-1]`` equals ``longest_match(t)`` when any
        match exists.
        """
        self._check_family(target)
        node = self._root
        while node is not None:
            common = _common_length(node.prefix, target)
            if common < node.prefix.length or node.prefix.length > target.length:
                return
            if node.has_value:
                yield node.prefix, node.value  # type: ignore[misc]
            if node.prefix.length == target.length:
                return
            bit = _bit_at(target.family, target.network, node.prefix.length)
            node = node.right if bit else node.left

    def _check_family(self, prefix: Prefix) -> None:
        if prefix.family is not self._family:
            raise AddressError(
                f"prefix {prefix} is {prefix.family.name}, "
                f"trie holds {self._family.name}"
            )


class PrefixMap(Generic[V]):
    """A dual-stack mapping from :class:`Prefix` to values.

    Wraps one :class:`RadixTrie` per family behind a dict-like interface so
    callers that handle mixed v4/v6 prefix sets (RIBs, traffic counters,
    override tables) do not need to dispatch on family themselves.
    """

    def __init__(self) -> None:
        self._tries = {
            Family.IPV4: RadixTrie[V](Family.IPV4),
            Family.IPV6: RadixTrie[V](Family.IPV6),
        }

    def __len__(self) -> int:
        return sum(len(trie) for trie in self._tries.values())

    def __setitem__(self, prefix: Prefix, value: V) -> None:
        self._tries[prefix.family].insert(prefix, value)

    def __getitem__(self, prefix: Prefix) -> V:
        return self._tries[prefix.family][prefix]

    def __delitem__(self, prefix: Prefix) -> None:
        self._tries[prefix.family].delete(prefix)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._tries[prefix.family]

    def get(self, prefix: Prefix, default: Optional[V] = None) -> Optional[V]:
        return self._tries[prefix.family].get(prefix, default)

    def pop(self, prefix: Prefix, *default: V) -> V:
        try:
            return self._tries[prefix.family].delete(prefix)
        except KeyError:
            if default:
                return default[0]
            raise

    def setdefault(self, prefix: Prefix, default: V) -> V:
        existing = self.get(prefix)
        if existing is None and prefix not in self:
            self[prefix] = default
            return default
        return existing  # type: ignore[return-value]

    def longest_match(self, target: Prefix) -> Optional[Tuple[Prefix, V]]:
        return self._tries[target.family].longest_match(target)

    def covered_by(self, covering: Prefix) -> Iterator[Tuple[Prefix, V]]:
        """All entries equal to or more specific than *covering*."""
        return self._tries[covering.family].subtree(covering)

    def subtree(self, covering: Prefix) -> Iterator[Tuple[Prefix, V]]:
        """All entries at or under *covering*, deterministic pre-order."""
        return self._tries[covering.family].subtree(covering)

    def matches(self, target: Prefix) -> Iterator[Tuple[Prefix, V]]:
        """All entries covering *target*, least specific first."""
        return self._tries[target.family].matches(target)

    def lookup_address(
        self, family: Family, address: int
    ) -> Optional[Tuple[Prefix, V]]:
        return self._tries[family].lookup_address(address)

    def items(self) -> Iterator[Tuple[Prefix, V]]:
        for family in (Family.IPV4, Family.IPV6):
            yield from self._tries[family].items()

    def keys(self) -> Iterator[Prefix]:
        for prefix, _value in self.items():
            yield prefix

    def values(self) -> Iterator[V]:
        for _prefix, value in self.items():
            yield value

    def __iter__(self) -> Iterator[Prefix]:
        return self.keys()

    def clear(self) -> None:
        for trie in self._tries.values():
            trie.clear()
