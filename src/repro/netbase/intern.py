"""Dense integer interning for hot-path keys.

At full-table scale (~900k dual-stack prefixes) the controller's hot
state is dominated by dict lookups keyed on :class:`~.addr.Prefix`
objects and interface tuples.  An :class:`Interner` assigns each
distinct key a stable, dense integer id the first time it is seen, so
columnar state (:mod:`repro.sflow.estimator`, :mod:`repro.core.projection`)
can keep per-key values in flat arrays indexed by id instead of per-key
boxed floats.

Ids are never recycled: a key's id is valid for the interner's lifetime
even if the keyed state empties and refills, which is exactly what a
sliding-window estimator needs (a prefix that goes quiet and returns
keeps its slot).  Density makes ids directly usable as array indices;
``len(interner)`` is always the next id to be assigned.

Because ids index *external* arrays, wiping the id space out from under
a registered consumer silently corrupts every column it holds: old
arrays keep rows for retired ids while fresh keys reuse those ids with
unrelated meanings.  Consumers therefore *register* with the interner
(:meth:`Interner.register_consumer`); a bare :meth:`Interner.clear`
refuses to run while any consumer is registered, and :meth:`Interner.reset`
is the sanctioned replacement — it invalidates every consumer (each
callback drops its id-indexed state) before wiping the tables.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Generic,
    Hashable,
    Iterator,
    List,
    Optional,
    TypeVar,
)

__all__ = ["Interner"]

K = TypeVar("K", bound=Hashable)


class Interner(Generic[K]):
    """Assigns stable dense integer ids to hashable keys.

    >>> interner = Interner()
    >>> interner.intern("a"), interner.intern("b"), interner.intern("a")
    (0, 1, 0)
    >>> interner.key_of(1)
    'b'
    """

    __slots__ = ("_ids", "_keys", "_consumers", "generation")

    def __init__(self) -> None:
        self._ids: Dict[K, int] = {}
        self._keys: List[K] = []
        #: Invalidation callbacks of registered id consumers.
        self._consumers: List[Callable[[], None]] = []
        #: Bumped by every :meth:`reset`; consumers that cache ids
        #: outside registered columns can compare generations instead
        #: of registering a callback.
        self.generation = 0

    def intern(self, key: K) -> int:
        """The id for *key*, assigning the next dense id if unseen."""
        found = self._ids.get(key)
        if found is not None:
            return found
        assigned = len(self._keys)
        self._ids[key] = assigned
        self._keys.append(key)
        return assigned

    def intern_all(self, keys) -> None:
        """Bulk-intern *keys* in order (ids follow iteration order).

        Seeding an interner from a frozen key table this way gives
        every attached consumer the same id space as the table's row
        order, so columnar state can be exchanged by row index.
        """
        for key in keys:
            self.intern(key)

    def id_of(self, key: K) -> Optional[int]:
        """The id for *key* if it has been interned, else None."""
        return self._ids.get(key)

    def key_of(self, ident: int) -> K:
        """The key holding id *ident* (raises IndexError if unassigned)."""
        return self._keys[ident]

    @property
    def keys(self) -> List[K]:
        """The id -> key table itself (treat as read-only)."""
        return self._keys

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: K) -> bool:
        return key in self._ids

    def __iter__(self) -> Iterator[K]:
        return iter(self._keys)

    # -- lifecycle -----------------------------------------------------------

    def register_consumer(self, invalidate: Callable[[], None]) -> None:
        """Register a holder of id-indexed state.

        *invalidate* is called (once per consumer, registration order)
        by :meth:`reset` before the id tables are wiped; it must drop or
        rebuild every structure indexed by this interner's ids.  While
        any consumer is registered, :meth:`clear` raises instead of
        silently corrupting those structures.
        """
        self._consumers.append(invalidate)

    def unregister_consumer(self, invalidate: Callable[[], None]) -> None:
        """Remove a previously registered consumer (ValueError if absent)."""
        self._consumers.remove(invalidate)

    def clear(self) -> None:
        """Wipe the id space; refused while consumers are registered.

        A consumer's arrays are indexed by the ids handed out so far —
        clearing underneath it would hand the same ids to unrelated
        keys.  Use :meth:`reset` to invalidate consumers first.
        """
        if self._consumers:
            raise RuntimeError(
                f"Interner.clear() with {len(self._consumers)} registered "
                "consumer(s) would corrupt their id-indexed state; call "
                "reset() instead (it invalidates consumers first)"
            )
        self._wipe()

    def reset(self) -> None:
        """Invalidate every registered consumer, then wipe the id space."""
        for invalidate in self._consumers:
            invalidate()
        self._wipe()

    def _wipe(self) -> None:
        self._ids.clear()
        self._keys.clear()
        self.generation += 1
