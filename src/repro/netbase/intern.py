"""Dense integer interning for hot-path keys.

At full-table scale (~700k prefixes) the controller's hot state is
dominated by dict lookups keyed on :class:`~.addr.Prefix` objects and
interface tuples.  An :class:`Interner` assigns each distinct key a
stable, dense integer id the first time it is seen, so columnar state
(:mod:`repro.sflow.estimator`, :mod:`repro.core.projection`) can keep
per-key values in flat arrays indexed by id instead of per-key boxed
floats.

Ids are never recycled: a key's id is valid for the interner's lifetime
even if the keyed state empties and refills, which is exactly what a
sliding-window estimator needs (a prefix that goes quiet and returns
keeps its slot).  Density makes ids directly usable as array indices;
``len(interner)`` is always the next id to be assigned.
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, Iterator, List, Optional, TypeVar

__all__ = ["Interner"]

K = TypeVar("K", bound=Hashable)


class Interner(Generic[K]):
    """Assigns stable dense integer ids to hashable keys.

    >>> interner = Interner()
    >>> interner.intern("a"), interner.intern("b"), interner.intern("a")
    (0, 1, 0)
    >>> interner.key_of(1)
    'b'
    """

    __slots__ = ("_ids", "_keys")

    def __init__(self) -> None:
        self._ids: Dict[K, int] = {}
        self._keys: List[K] = []

    def intern(self, key: K) -> int:
        """The id for *key*, assigning the next dense id if unseen."""
        found = self._ids.get(key)
        if found is not None:
            return found
        assigned = len(self._keys)
        self._ids[key] = assigned
        self._keys.append(key)
        return assigned

    def id_of(self, key: K) -> Optional[int]:
        """The id for *key* if it has been interned, else None."""
        return self._ids.get(key)

    def key_of(self, ident: int) -> K:
        """The key holding id *ident* (raises IndexError if unassigned)."""
        return self._keys[ident]

    @property
    def keys(self) -> List[K]:
        """The id -> key table itself (treat as read-only)."""
        return self._keys

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: K) -> bool:
        return key in self._ids

    def __iter__(self) -> Iterator[K]:
        return iter(self._keys)

    def clear(self) -> None:
        self._ids.clear()
        self._keys.clear()
