"""Frozen, shareable columnar snapshots of prefix-keyed tables.

Full-table deployments hold one large read-mostly dataset — the routed
prefix table plus per-prefix columns (demand weights, base rates,
homing) — and then fork a worker per PoP.  Under fork, every worker
inherits the parent's boxed Python objects; CPython's reference counting
and cycle collector write into the header of each object they touch, so
the copy-on-write pages holding those objects are dirtied worker by
worker until each process carries its own full copy.

A :class:`FrozenTable` takes the other path: the key table and every
column are packed into **one contiguous buffer** that can live in
:mod:`multiprocessing.shared_memory`.  Workers attach the buffer and map
numpy views straight onto it — no per-row Python objects, nothing for
the allocator or GC to write to — so the table costs one set of physical
pages machine-wide no matter how many workers read it.  Views are marked
read-only; per-worker mutable state is an explicit overlay (copy the
column you need to write).

IPv6 networks are 128-bit and do not fit any numpy integer dtype, so
prefix networks are split into *hi/lo* ``uint64`` columns
(:class:`PrefixColumns`): ``hi`` holds bits 64..127 (always zero for
IPv4), ``lo`` bits 0..63.  The split is exact — packing and unpacking
round-trip bit-for-bit for both families — which is what lets the
columnar hot paths carry the dual-stack table without widening to
Python integers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from .addr import Family, Prefix
from .errors import ReproError

__all__ = [
    "PrefixColumns",
    "FrozenTable",
    "SubstrateError",
    "pack_prefixes",
    "unpack_prefixes",
]

_MAGIC = b"REPROFZ1"
_ALIGN = 64
_U64_MASK = (1 << 64) - 1


class SubstrateError(ReproError):
    """A frozen-table buffer is malformed or misused."""


@dataclass(frozen=True)
class PrefixColumns:
    """A prefix table as four parallel columns (one row per prefix).

    ``family`` carries the IANA AFI value (1/2), ``length`` the mask
    length, and the network address is split across two ``uint64``
    halves because 128-bit IPv6 networks fit no numpy integer dtype:
    ``net_hi`` holds bits 64..127 (zero for IPv4), ``net_lo`` bits
    0..63.  The representation is exact for both families.
    """

    family: np.ndarray  # uint8
    length: np.ndarray  # uint8
    net_hi: np.ndarray  # uint64
    net_lo: np.ndarray  # uint64

    def __len__(self) -> int:
        return len(self.family)

    def prefix_at(self, row: int) -> Prefix:
        """Reconstruct one row's :class:`Prefix`, bit-identical."""
        family = Family(int(self.family[row]))
        network = (int(self.net_hi[row]) << 64) | int(self.net_lo[row])
        return Prefix(family, network, int(self.length[row]))


def pack_prefixes(prefixes: Sequence[Prefix]) -> PrefixColumns:
    """Pack *prefixes* into hi/lo columnar form (row order preserved)."""
    count = len(prefixes)
    family = np.empty(count, dtype=np.uint8)
    length = np.empty(count, dtype=np.uint8)
    # Build the halves as Python ints first: values in [0, 2**64) are
    # exactly representable, and the single array construction at the
    # end is far cheaper than per-element numpy stores.
    hi: List[int] = []
    lo: List[int] = []
    for row, prefix in enumerate(prefixes):
        family[row] = int(prefix.family)
        length[row] = prefix.length
        network = prefix.network
        hi.append(network >> 64)
        lo.append(network & _U64_MASK)
    return PrefixColumns(
        family=family,
        length=length,
        net_hi=np.array(hi, dtype=np.uint64),
        net_lo=np.array(lo, dtype=np.uint64),
    )


def unpack_prefixes(columns: PrefixColumns) -> List[Prefix]:
    """Rebuild the packed prefixes, bit-identical and in row order."""
    families = columns.family.tolist()
    lengths = columns.length.tolist()
    his = columns.net_hi.tolist()
    los = columns.net_lo.tolist()
    return [
        Prefix(Family(families[row]), (his[row] << 64) | los[row], lengths[row])
        for row in range(len(families))
    ]


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


_PREFIX_COLUMN_NAMES = (
    "__prefix_family",
    "__prefix_length",
    "__prefix_net_hi",
    "__prefix_net_lo",
)


class FrozenTable:
    """An immutable prefix table plus named columns in one flat buffer.

    Build one with :meth:`build` (from live arrays), then either keep it
    in-process, ship it as :meth:`to_bytes`, or :meth:`share` it through
    POSIX shared memory and :meth:`attach` from any other process.  All
    access paths end in the same place: numpy views directly onto the
    buffer, marked read-only.

    Layout::

        [8B magic][8B header length][header JSON][pad to 64]
        [column 0 bytes][pad to 64][column 1 bytes][pad] ...

    The header records each column's dtype, shape and offset; prefix
    columns (when present) are ordinary columns under reserved names.
    """

    def __init__(
        self,
        buffer,
        columns: Dict[str, np.ndarray],
        shm=None,
    ) -> None:
        self._buffer = buffer
        self._columns = columns
        self._shm = shm
        self._prefixes: Optional[List[Prefix]] = None

    # -- construction --------------------------------------------------------

    @classmethod
    def build(
        cls,
        prefixes: Optional[Sequence[Prefix]] = None,
        columns: Optional[Dict[str, np.ndarray]] = None,
    ) -> "FrozenTable":
        """Freeze *prefixes* (optional) and *columns* into one buffer.

        Column arrays must be one-dimensional; each is copied once into
        the packed buffer, so the originals stay untouched and the
        frozen views share no memory with them.
        """
        named: Dict[str, np.ndarray] = {}
        if prefixes is not None:
            packed = pack_prefixes(prefixes)
            named[_PREFIX_COLUMN_NAMES[0]] = packed.family
            named[_PREFIX_COLUMN_NAMES[1]] = packed.length
            named[_PREFIX_COLUMN_NAMES[2]] = packed.net_hi
            named[_PREFIX_COLUMN_NAMES[3]] = packed.net_lo
        for name, array in (columns or {}).items():
            if name.startswith("__"):
                raise SubstrateError(
                    f"column name {name!r} is reserved (double underscore)"
                )
            arr = np.ascontiguousarray(array)
            if arr.ndim != 1:
                raise SubstrateError(
                    f"column {name!r} must be one-dimensional, "
                    f"got shape {arr.shape}"
                )
            named[name] = arr
        if not named:
            raise SubstrateError("a frozen table needs at least one column")

        entries = []
        # First pass with a placeholder header length to discover the
        # real header size, second pass with the true offsets; the JSON
        # length only depends on the offsets' digit count, so iterate
        # until stable (converges in <= 2 extra rounds).
        header_len = 0
        while True:
            entries = []
            offset = _aligned(len(_MAGIC) + 8 + header_len)
            for name, arr in named.items():
                entries.append(
                    {
                        "name": name,
                        "dtype": arr.dtype.str,
                        "count": int(arr.shape[0]),
                        "offset": offset,
                    }
                )
                offset = _aligned(offset + arr.nbytes)
            header = json.dumps({"columns": entries}).encode("ascii")
            if len(header) == header_len:
                total = offset
                break
            header_len = len(header)

        buffer = bytearray(total)
        buffer[: len(_MAGIC)] = _MAGIC
        buffer[len(_MAGIC) : len(_MAGIC) + 8] = len(header).to_bytes(
            8, "little"
        )
        start = len(_MAGIC) + 8
        buffer[start : start + len(header)] = header
        views: Dict[str, np.ndarray] = {}
        for entry, arr in zip(entries, named.values()):
            begin = entry["offset"]
            buffer[begin : begin + arr.nbytes] = arr.tobytes()
        table = cls(bytes(buffer), {})
        table._columns = _map_columns(table._buffer, entries)
        return table

    @classmethod
    def from_buffer(cls, buffer, shm=None) -> "FrozenTable":
        """Map a frozen table from an existing buffer (zero-copy)."""
        view = memoryview(buffer)
        if bytes(view[: len(_MAGIC)]) != _MAGIC:
            raise SubstrateError("buffer does not hold a frozen table")
        header_len = int.from_bytes(
            bytes(view[len(_MAGIC) : len(_MAGIC) + 8]), "little"
        )
        start = len(_MAGIC) + 8
        try:
            header = json.loads(bytes(view[start : start + header_len]))
        except ValueError as exc:
            raise SubstrateError(f"corrupt frozen-table header: {exc}") from exc
        table = cls(buffer, {}, shm=shm)
        table._columns = _map_columns(buffer, header["columns"])
        return table

    def to_bytes(self) -> bytes:
        """The packed buffer (suitable for files or wire transfer)."""
        return bytes(self._buffer)

    # -- shared memory -------------------------------------------------------

    def share(self, name: Optional[str] = None) -> "FrozenTable":
        """Copy this table into POSIX shared memory; returns the shared
        twin (the creating process owns the segment — call
        :meth:`unlink` there when every attacher is done)."""
        from multiprocessing import shared_memory

        data = self.to_bytes()
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=len(data)
        )
        shm.buf[: len(data)] = data
        return FrozenTable.from_buffer(shm.buf, shm=shm)

    @classmethod
    def attach(cls, name: str) -> "FrozenTable":
        """Attach to a shared table created by :meth:`share` elsewhere.

        The attaching process maps views only; it never owns the
        segment.  Call :meth:`close` when done.
        """
        from multiprocessing import shared_memory

        # The resource tracker assumes whoever opens a segment owns it
        # and unlinks it on that process's exit — which would tear the
        # substrate out from under every other attacher (and, since
        # workers share the parent's tracker process, corrupt its
        # registry for the creator's own unlink).  Only the creator
        # tracks; suppress registration for the attach.
        try:  # pragma: no cover - tracker internals vary by version
            from multiprocessing import resource_tracker

            original = resource_tracker.register

            def _skip_shm(name_, rtype):
                if rtype != "shared_memory":
                    original(name_, rtype)

            resource_tracker.register = _skip_shm
            try:
                shm = shared_memory.SharedMemory(name=name, create=False)
            finally:
                resource_tracker.register = original
        except ImportError:
            shm = shared_memory.SharedMemory(name=name, create=False)
        return cls.from_buffer(shm.buf, shm=shm)

    @property
    def shared_name(self) -> Optional[str]:
        """The shared-memory segment name (None when not shared)."""
        return self._shm.name if self._shm is not None else None

    def close(self) -> None:
        """Drop this process's mapping (views become invalid).

        If column views are still referenced elsewhere the mmap cannot
        be unmapped yet; the close is best-effort and the mapping then
        goes away with the process (a BufferError here must not take
        down a worker's shutdown path).
        """
        self._columns = {}
        self._prefixes = None
        self._buffer = b""
        if self._shm is not None:
            try:
                self._shm.close()
            except BufferError:
                pass
            self._shm = None

    def unlink(self) -> None:
        """Destroy the shared segment (creator only; closes first)."""
        shm = self._shm
        self.close()
        if shm is not None:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass

    # -- access --------------------------------------------------------------

    def column_names(self) -> List[str]:
        return [
            name for name in self._columns if not name.startswith("__")
        ]

    def column(self, name: str) -> np.ndarray:
        """Read-only view of one named column."""
        try:
            return self._columns[name]
        except KeyError:
            raise SubstrateError(
                f"no column {name!r}; have {self.column_names()}"
            ) from None

    def has_prefixes(self) -> bool:
        return _PREFIX_COLUMN_NAMES[0] in self._columns

    def prefix_columns(self) -> PrefixColumns:
        """The packed prefix table (read-only views)."""
        if not self.has_prefixes():
            raise SubstrateError("this table was frozen without prefixes")
        return PrefixColumns(
            family=self._columns[_PREFIX_COLUMN_NAMES[0]],
            length=self._columns[_PREFIX_COLUMN_NAMES[1]],
            net_hi=self._columns[_PREFIX_COLUMN_NAMES[2]],
            net_lo=self._columns[_PREFIX_COLUMN_NAMES[3]],
        )

    def prefixes(self) -> List[Prefix]:
        """The prefix table as :class:`Prefix` objects (cached).

        Reconstruction materializes per-row Python objects — the one
        thing the substrate avoids — so call this only where object
        identity is needed (building per-worker RIB state), never in a
        per-cycle path.
        """
        if self._prefixes is None:
            self._prefixes = unpack_prefixes(self.prefix_columns())
        return self._prefixes

    def __len__(self) -> int:
        if self.has_prefixes():
            return len(self._columns[_PREFIX_COLUMN_NAMES[0]])
        first = next(iter(self._columns.values()), None)
        return 0 if first is None else len(first)

    def nbytes(self) -> int:
        """Size of the packed buffer in bytes."""
        return len(self._buffer)


def _map_columns(buffer, entries: Iterable[dict]) -> Dict[str, np.ndarray]:
    """Read-only numpy views onto *buffer* for each header entry."""
    columns: Dict[str, np.ndarray] = {}
    for entry in entries:
        dtype = np.dtype(entry["dtype"])
        count = entry["count"]
        offset = entry["offset"]
        view = np.frombuffer(
            buffer, dtype=dtype, count=count, offset=offset
        )
        view.flags.writeable = False
        columns[entry["name"]] = view
    return columns
