"""Autonomous system numbers and inter-AS business relationships.

Edge Fabric's world is AS-level: every peer on a PoP's peering routers is an
AS, every BGP path is a sequence of ASes, and the synthetic Internet
topology assigns Gao-Rexford style relationships between ASes.  This module
provides ASN validation plus the relationship vocabulary shared by the
topology generator and the BGP policy engine.
"""

from __future__ import annotations

from enum import Enum

from .errors import AddressError

__all__ = [
    "MAX_ASN",
    "AS_TRANS",
    "validate_asn",
    "is_private_asn",
    "is_reserved_asn",
    "Relationship",
]

MAX_ASN = 2**32 - 1

#: RFC 6793: placeholder ASN used in 2-byte fields by 4-byte-ASN speakers.
AS_TRANS = 23456

_PRIVATE_16 = range(64512, 65535)  # RFC 6996 (65535 itself is reserved)
_PRIVATE_32 = range(4200000000, 4294967295)


def validate_asn(asn: int) -> int:
    """Validate an AS number, returning it unchanged.

    Raises :class:`AddressError` for out-of-range values.  ASN 0 is
    reserved (RFC 7607) and rejected because no real peer may use it.
    """
    if not isinstance(asn, int) or isinstance(asn, bool):
        raise AddressError(f"ASN must be an int, got {asn!r}")
    if asn <= 0 or asn > MAX_ASN:
        raise AddressError(f"ASN {asn} out of range 1..{MAX_ASN}")
    return asn


def is_private_asn(asn: int) -> bool:
    """True for RFC 6996 private-use AS numbers."""
    return asn in _PRIVATE_16 or asn in _PRIVATE_32


def is_reserved_asn(asn: int) -> bool:
    """True for reserved ASNs that must not appear in a public AS_PATH."""
    return asn == 0 or asn == 65535 or asn == MAX_ASN or asn == AS_TRANS


class Relationship(Enum):
    """Business relationship of a neighbor AS, from our point of view.

    The values follow the Gao-Rexford model used by the synthetic Internet
    topology: routes learned from customers may be exported to everyone;
    routes learned from peers or providers may be exported only to
    customers.
    """

    CUSTOMER = "customer"
    PEER = "peer"
    PROVIDER = "provider"

    def may_export_to(self, learned_from: "Relationship") -> bool:
        """Valley-free export rule.

        ``self`` is the neighbor a route would be exported *to*;
        *learned_from* is the neighbor the route was learned from.
        """
        if learned_from is Relationship.CUSTOMER:
            return True
        return self is Relationship.CUSTOMER

    @property
    def inverse(self) -> "Relationship":
        """The same link seen from the other side."""
        if self is Relationship.CUSTOMER:
            return Relationship.PROVIDER
        if self is Relationship.PROVIDER:
            return Relationship.CUSTOMER
        return Relationship.PEER
