"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class at API boundaries.  Subsystems define
narrower subclasses here rather than ad-hoc exceptions so that the dataplane
simulator, the controller and the wire codecs share one vocabulary for
failure.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "AddressError",
    "CodecError",
    "DecodeError",
    "TruncatedMessage",
    "MalformedMessage",
    "UnsupportedFeature",
    "PolicyError",
    "RibError",
    "SessionError",
    "TopologyError",
    "TrafficError",
    "DataplaneError",
    "MeasurementError",
    "ControllerError",
    "StaleInputError",
    "AllocationError",
    "InjectionError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AddressError(ReproError, ValueError):
    """An IP address, prefix or ASN could not be parsed or is invalid."""


class CodecError(ReproError, ValueError):
    """A wire-format message could not be encoded or decoded."""


class DecodeError(CodecError):
    """Bytes from the wire could not be decoded.

    The common parent of :class:`TruncatedMessage` and
    :class:`MalformedMessage` — socket frontends catch this one class to
    count-and-drop undecodable input, whatever the specific defect.
    """


class TruncatedMessage(DecodeError):
    """The byte buffer ended before the message was complete."""


class MalformedMessage(DecodeError):
    """The bytes were structurally invalid for the claimed message type."""


class UnsupportedFeature(CodecError):
    """The message used an optional feature this codec does not implement."""


class PolicyError(ReproError):
    """A routing policy was misconfigured or could not be applied."""


class RibError(ReproError):
    """An operation on a routing table was invalid (e.g. withdrawing an
    unknown route)."""


class SessionError(ReproError):
    """A BGP session operation violated the FSM (e.g. update while Idle)."""


class TopologyError(ReproError):
    """The PoP or AS-level topology was inconsistent."""


class TrafficError(ReproError):
    """Synthetic traffic generation was asked for an impossible workload."""


class DataplaneError(ReproError):
    """The forwarding simulation hit an inconsistent state."""


class MeasurementError(ReproError):
    """A path-performance measurement could not be produced."""


class ControllerError(ReproError):
    """The Edge Fabric controller could not complete a cycle."""


class StaleInputError(ControllerError):
    """A controller input snapshot was older than the staleness bound.

    Edge Fabric refuses to act on stale routing or traffic data: acting on
    an old picture of the network can push an interface *into* overload
    rather than out of it.  The controller treats this as "skip the cycle",
    never as "use the data anyway".
    """


class AllocationError(ControllerError):
    """The allocator could not produce a feasible detour assignment."""


class InjectionError(ControllerError):
    """The BGP injector failed to enforce an override."""


class ExperimentError(ReproError):
    """An experiment harness was configured inconsistently."""
