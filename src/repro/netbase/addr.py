"""IP address and prefix value types.

The whole library keys routing tables, traffic counters and override sets by
destination prefix, so :class:`Prefix` is the most heavily used value type in
the package.  It stores the network as a plain integer plus a mask length,
which makes hashing, comparison and longest-prefix-match bit tests cheap —
far cheaper than carrying :mod:`ipaddress` network objects around — while
delegating parsing and rendering to the standard library.

Both IPv4 and IPv6 are supported; Facebook's PoPs (and therefore Edge
Fabric) serve both families, and the paper's controller treats them
uniformly.
"""

from __future__ import annotations

import ipaddress
from enum import IntEnum
from typing import Iterator, Union

from .errors import AddressError

__all__ = ["Family", "Prefix", "parse_prefix", "parse_address"]


class Family(IntEnum):
    """Address family, numbered per IANA AFI values (used on the wire)."""

    IPV4 = 1
    IPV6 = 2

    @property
    def max_length(self) -> int:
        return 32 if self is Family.IPV4 else 128

    @property
    def address_bytes(self) -> int:
        return 4 if self is Family.IPV4 else 16


def parse_address(text: str) -> tuple[Family, int]:
    """Parse a bare IP address into (family, integer value)."""
    try:
        address = ipaddress.ip_address(text)
    except ValueError as exc:
        raise AddressError(f"invalid IP address {text!r}: {exc}") from exc
    family = Family.IPV4 if address.version == 4 else Family.IPV6
    return family, int(address)


class Prefix:
    """An immutable IP prefix (network address + mask length).

    >>> p = Prefix.parse("93.184.216.0/24")
    >>> p.length, p.family
    (24, <Family.IPV4: 1>)
    >>> p.contains_address(*parse_address("93.184.216.34"))
    True
    >>> Prefix.parse("93.184.0.0/16").covers(p)
    True
    """

    __slots__ = ("_family", "_network", "_length", "_hash")

    def __init__(self, family: Family, network: int, length: int) -> None:
        if not isinstance(family, Family):
            raise AddressError(f"family must be a Family, got {family!r}")
        max_length = family.max_length
        if not 0 <= length <= max_length:
            raise AddressError(
                f"prefix length {length} out of range for {family.name}"
            )
        if network < 0 or network >= (1 << max_length):
            raise AddressError(f"network value {network} out of range")
        host_bits = max_length - length
        if host_bits and network & ((1 << host_bits) - 1):
            raise AddressError(
                f"host bits set in network value for /{length} prefix"
            )
        self._family = family
        self._network = network
        self._length = length
        # Prefixes key every RIB, traffic counter and override table, so
        # they are hashed millions of times per simulated day; the value
        # is immutable, so compute it once.
        self._hash = hash((family, network, length))

    # -- construction --------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"net/len"`` notation; host bits must be zero."""
        try:
            net = ipaddress.ip_network(text, strict=True)
        except ValueError as exc:
            raise AddressError(f"invalid prefix {text!r}: {exc}") from exc
        family = Family.IPV4 if net.version == 4 else Family.IPV6
        return cls(family, int(net.network_address), net.prefixlen)

    @classmethod
    def from_address(
        cls, family: Family, address: int, length: int
    ) -> "Prefix":
        """Build a prefix by masking an arbitrary address down to *length*."""
        host_bits = family.max_length - length
        if not 0 <= host_bits <= family.max_length:
            raise AddressError(
                f"prefix length {length} out of range for {family.name}"
            )
        mask = ((1 << family.max_length) - 1) >> host_bits << host_bits
        return cls(family, address & mask, length)

    @classmethod
    def default(cls, family: Family) -> "Prefix":
        """The default route (0.0.0.0/0 or ::/0)."""
        return cls(family, 0, 0)

    # -- accessors -----------------------------------------------------------

    @property
    def family(self) -> Family:
        return self._family

    @property
    def network(self) -> int:
        return self._network

    @property
    def length(self) -> int:
        return self._length

    @property
    def bits(self) -> str:
        """The network as a bit string of exactly ``length`` characters."""
        if self._length == 0:
            return ""
        shifted = self._network >> (self._family.max_length - self._length)
        return format(shifted, f"0{self._length}b")

    def network_bytes(self) -> bytes:
        """The full network address as packed bytes (4 or 16)."""
        return self._network.to_bytes(self._family.address_bytes, "big")

    def nlri_bytes(self) -> bytes:
        """BGP NLRI encoding: length octet + minimal network octets."""
        octets = (self._length + 7) // 8
        shift = self._family.max_length - octets * 8
        truncated = self._network >> shift if shift else self._network
        return bytes([self._length]) + truncated.to_bytes(octets, "big")

    # -- relations -----------------------------------------------------------

    def contains_address(self, family: Family, address: int) -> bool:
        """True if *address* falls inside this prefix."""
        if family is not self._family:
            return False
        host_bits = self._family.max_length - self._length
        return (address >> host_bits) == (self._network >> host_bits)

    def covers(self, other: "Prefix") -> bool:
        """True if *other* is equal to or more specific than this prefix."""
        if other._family is not self._family or other._length < self._length:
            return False
        return self.contains_address(other._family, other._network)

    def subnets(self) -> Iterator["Prefix"]:
        """The two immediate subnets (one bit longer)."""
        if self._length >= self._family.max_length:
            raise AddressError("cannot subnet a host prefix")
        child_len = self._length + 1
        bit = 1 << (self._family.max_length - child_len)
        yield Prefix(self._family, self._network, child_len)
        yield Prefix(self._family, self._network | bit, child_len)

    # -- value semantics -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Prefix)
            and self._family is other._family
            and self._length == other._length
            and self._network == other._network
        )

    def __lt__(self, other: "Prefix") -> bool:
        """Total order for deterministic iteration: family, network, length."""
        if not isinstance(other, Prefix):
            return NotImplemented
        return (self._family, self._network, self._length) < (
            other._family,
            other._network,
            other._length,
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (Prefix, (self._family, self._network, self._length))

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"

    def __str__(self) -> str:
        if self._family is Family.IPV4:
            addr: Union[ipaddress.IPv4Address, ipaddress.IPv6Address]
            addr = ipaddress.IPv4Address(self._network)
        else:
            addr = ipaddress.IPv6Address(self._network)
        return f"{addr}/{self._length}"


def parse_prefix(text: str) -> Prefix:
    """Convenience wrapper for :meth:`Prefix.parse`."""
    return Prefix.parse(text)
