"""Bandwidth and data-rate units.

Interface capacities, traffic demands and projected loads are all rates.
Representing them as bare floats invites unit mistakes (bits vs bytes,
mega vs giga), so the library uses a small immutable :class:`Rate` value
type measured internally in bits per second.

``Rate`` supports the arithmetic the allocator needs — addition,
subtraction, scaling, division (ratio of two rates), and comparison — and
nothing more.
"""

from __future__ import annotations

import math
from functools import total_ordering

__all__ = ["Rate", "bps", "kbps", "mbps", "gbps", "tbps"]

_KILO = 1_000.0
_MEGA = 1_000_000.0
_GIGA = 1_000_000_000.0
_TERA = 1_000_000_000_000.0


@total_ordering
class Rate:
    """An immutable data rate in bits per second.

    >>> gbps(10) + gbps(2.5)
    Rate('12.500 Gbps')
    >>> gbps(5) / gbps(10)
    0.5
    >>> gbps(5) * 2
    Rate('10.000 Gbps')
    """

    __slots__ = ("_bps",)

    def __init__(self, bits_per_second: float) -> None:
        value = float(bits_per_second)
        if math.isnan(value):
            raise ValueError("rate cannot be NaN")
        if value < 0:
            raise ValueError(f"rate cannot be negative: {value}")
        object.__setattr__(self, "_bps", value)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Rate is immutable")

    # -- accessors ---------------------------------------------------------

    @property
    def bits_per_second(self) -> float:
        return self._bps

    @property
    def megabits_per_second(self) -> float:
        return self._bps / _MEGA

    @property
    def gigabits_per_second(self) -> float:
        return self._bps / _GIGA

    def is_zero(self) -> bool:
        return self._bps == 0.0

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: "Rate") -> "Rate":
        if not isinstance(other, Rate):
            return NotImplemented
        return Rate(self._bps + other._bps)

    def __sub__(self, other: "Rate") -> "Rate":
        """Subtract, flooring at zero.

        Rates are magnitudes; "capacity minus load" below zero means "no
        headroom", so a floor at zero is the semantics every caller wants.
        Use :meth:`surplus_over` when the sign matters.
        """
        if not isinstance(other, Rate):
            return NotImplemented
        return Rate(max(0.0, self._bps - other._bps))

    def surplus_over(self, other: "Rate") -> float:
        """Signed difference in bits/second (self - other)."""
        return self._bps - other._bps

    def __mul__(self, factor: float) -> "Rate":
        if not isinstance(factor, (int, float)):
            return NotImplemented
        return Rate(self._bps * factor)

    __rmul__ = __mul__

    def __truediv__(self, other):
        if isinstance(other, Rate):
            if other._bps == 0.0:
                raise ZeroDivisionError("cannot divide by a zero rate")
            return self._bps / other._bps
        if isinstance(other, (int, float)):
            return Rate(self._bps / other)
        return NotImplemented

    # -- comparison / hashing ----------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Rate) and self._bps == other._bps

    def __lt__(self, other: "Rate") -> bool:
        if not isinstance(other, Rate):
            return NotImplemented
        return self._bps < other._bps

    def __hash__(self) -> int:
        return hash(("Rate", self._bps))

    def __reduce__(self):
        # The immutability guard in __setattr__ breaks pickle's default
        # slot restoration; rebuild through the constructor instead
        # (needed when run records cross process boundaries in the
        # parallel fleet runner).
        return (Rate, (self._bps,))

    def __bool__(self) -> bool:
        return self._bps > 0.0

    # -- rendering -----------------------------------------------------------

    def __repr__(self) -> str:
        return f"Rate({str(self)!r})"

    def __str__(self) -> str:
        magnitude = abs(self._bps)
        if magnitude >= _TERA:
            return f"{self._bps / _TERA:.3f} Tbps"
        if magnitude >= _GIGA:
            return f"{self._bps / _GIGA:.3f} Gbps"
        if magnitude >= _MEGA:
            return f"{self._bps / _MEGA:.3f} Mbps"
        if magnitude >= _KILO:
            return f"{self._bps / _KILO:.3f} kbps"
        return f"{self._bps:.0f} bps"


def bps(value: float) -> Rate:
    """A rate expressed in bits per second."""
    return Rate(value)


def kbps(value: float) -> Rate:
    """A rate expressed in kilobits per second."""
    return Rate(value * _KILO)


def mbps(value: float) -> Rate:
    """A rate expressed in megabits per second."""
    return Rate(value * _MEGA)


def gbps(value: float) -> Rate:
    """A rate expressed in gigabits per second."""
    return Rate(value * _GIGA)


def tbps(value: float) -> Rate:
    """A rate expressed in terabits per second."""
    return Rate(value * _TERA)
