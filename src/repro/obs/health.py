"""The conformance & health engine: SLOs over the controller's signals.

Production Edge Fabric earned trust by being *watched*: operators
tracked projected-vs-actual interface load, override churn, and input
freshness before letting the controller steer unattended.  This module
is that watcher for the reproduction.  Once per controller cycle the
:class:`HealthEngine`:

1. samples the deployment's :class:`~repro.obs.metrics.MetricsRegistry`
   into its :class:`~repro.obs.timeseries.TimeSeriesStore` (bounded
   history for every exported series),
2. derives per-cycle *error samples* (0/1) for each conformance signal —
   input freshness, fail-static, collector resyncs, projection drift,
   projected-vs-observed utilization conformance, per-prefix override
   flapping, cycle-runtime budget, safety-checker findings,
3. evaluates every :class:`SloRule` with multi-window burn rates
   (Google-SRE style: a fast window to catch active breakage, a slow
   window to confirm budget spend) and walks each alert through
   ``ok → pending → firing → resolved``, emitting a metrics counter, a
   structured log event, and a decision-audit entry on every transition.

The engine is strictly an observer: it never touches steering state, so
runs with it on and off are byte-identical in every decision — the
property the integration tests and the hot-path bench gate assert.  It
is also plain picklable data (no closures, no open files), so fleet
workers carry their engines back to the parent like the rest of
telemetry.
"""

from __future__ import annotations

import json
import time as _time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..netbase.errors import ReproError
from .logs import get_logger, log_event
from .timeseries import TimeSeriesStore

__all__ = [
    "SloError",
    "SloRule",
    "SloSpec",
    "Alert",
    "AlertTransition",
    "HealthEngine",
    "HealthReport",
    "HEALTH_SIGNALS",
    "ALERT_OK",
    "ALERT_PENDING",
    "ALERT_FIRING",
    "ALERT_RESOLVED",
]

_log = get_logger("repro.obs.health")


class SloError(ReproError):
    """An SLO spec was malformed or internally inconsistent."""


#: Every conformance signal the engine derives, and what 1.0 means.
HEALTH_SIGNALS: Tuple[str, ...] = (
    "input_freshness",  # cycle skipped on stale inputs
    "fail_static",  # fail-static withdrew overrides this cycle
    "collector_resync",  # BMP collector reset / awaiting resync
    "projection_drift",  # incremental loads drifted past tolerance
    "load_conformance",  # projected vs observed utilization mismatch
    "override_flap",  # some prefix oscillated announce/withdraw
    "steering_flap",  # a steering key burned its tier-transition budget
    "cycle_runtime",  # cycle compute time blew its budget
    "safety_violation",  # the safety checker found new violations
    "ingest_backpressure",  # the wire-ingest queues dropped or expired input
)

ALERT_OK = "ok"
ALERT_PENDING = "pending"
ALERT_FIRING = "firing"
ALERT_RESOLVED = "resolved"

_SEVERITIES = ("page", "ticket")


@dataclass(frozen=True)
class SloRule:
    """One objective over one signal, evaluated with two burn windows.

    ``objective`` is the tolerated mean error level of the signal
    (0.01 = one bad cycle in a hundred).  The *burn rate* of a window is
    its observed mean error divided by the objective; the alert goes
    ``pending`` when the fast window alone burns hot and ``firing`` when
    both windows do — fast to catch active breakage, slow to ignore a
    single ancient blip.  Windows are counted in controller cycles.
    """

    name: str
    signal: str
    objective: float = 0.01
    fast_window: int = 5
    slow_window: int = 60
    fast_burn: float = 10.0
    slow_burn: float = 1.0
    severity: str = "page"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SloError("rule needs a name")
        if self.signal not in HEALTH_SIGNALS:
            raise SloError(
                f"{self.name}: unknown signal {self.signal!r}; "
                f"expected one of {HEALTH_SIGNALS}"
            )
        if not 0.0 < self.objective <= 1.0:
            raise SloError(f"{self.name}: objective must be in (0, 1]")
        if self.fast_window < 1 or self.slow_window < 1:
            raise SloError(f"{self.name}: windows must be >= 1 cycle")
        if self.fast_window > self.slow_window:
            raise SloError(
                f"{self.name}: fast window must not exceed slow window"
            )
        if self.fast_burn <= 0.0 or self.slow_burn <= 0.0:
            raise SloError(f"{self.name}: burn thresholds must be > 0")
        if self.severity not in _SEVERITIES:
            raise SloError(
                f"{self.name}: severity must be one of {_SEVERITIES}"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "signal": self.signal,
            "objective": self.objective,
            "fast_window": self.fast_window,
            "slow_window": self.slow_window,
            "fast_burn": self.fast_burn,
            "slow_burn": self.slow_burn,
            "severity": self.severity,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SloRule":
        try:
            return cls(
                name=str(data["name"]),
                signal=str(data["signal"]),
                objective=float(data.get("objective", 0.01)),
                fast_window=int(data.get("fast_window", 5)),
                slow_window=int(data.get("slow_window", 60)),
                fast_burn=float(data.get("fast_burn", 10.0)),
                slow_burn=float(data.get("slow_burn", 1.0)),
                severity=str(data.get("severity", "page")),
                description=str(data.get("description", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SloError(f"bad SLO rule {data!r}") from exc


@dataclass
class SloSpec:
    """A declarative health spec: alert rules plus monitor tuning.

    Serializes like :class:`~repro.faults.FaultPlan` (dict/JSON/file
    round-trip) so specs live next to experiments and chaos plans.
    Monitor thresholds ride along so one file describes the whole
    conformance posture, not just the alerting layer:

    - ``load_drift_tolerance`` — absolute utilization gap between what
      the previous cycle projected for an interface and what the
      dataplane then measured before the cycle counts as nonconformant,
    - ``flap_window_cycles`` / ``flap_threshold`` — a prefix whose
      override was announced/withdrawn at least *threshold* times
      within the window counts as flapping,
    - ``runtime_budget_fraction`` — cycle compute time beyond this
      fraction of the cycle period counts as a runtime overrun.
    """

    rules: List[SloRule] = field(default_factory=list)
    load_drift_tolerance: float = 0.25
    flap_window_cycles: int = 10
    #: Clean chaos-mini runs reach 6 transitions per window when the
    #: allocator hovers at an interface's hysteresis band; 8 keeps the
    #: monitor quiet there while still catching sustained oscillation.
    flap_threshold: int = 8
    runtime_budget_fraction: float = 0.5
    #: Cycles to skip before the load-conformance monitor arms: the
    #: first projections ride a half-warm rate-estimator window and
    #: disagree with the dataplane by design, not by defect.
    conformance_warmup_cycles: int = 5

    def __post_init__(self) -> None:
        seen = set()
        for rule in self.rules:
            if rule.name in seen:
                raise SloError(f"duplicate rule name {rule.name!r}")
            seen.add(rule.name)
        if self.load_drift_tolerance <= 0.0:
            raise SloError("load_drift_tolerance must be > 0")
        if self.flap_window_cycles < 1:
            raise SloError("flap_window_cycles must be >= 1")
        if self.flap_threshold < 2:
            raise SloError("flap_threshold must be >= 2")
        if self.runtime_budget_fraction <= 0.0:
            raise SloError("runtime_budget_fraction must be > 0")
        if self.conformance_warmup_cycles < 0:
            raise SloError("conformance_warmup_cycles must be >= 0")

    @classmethod
    def default(cls) -> "SloSpec":
        """The stock posture: page on degradation-ladder signals,
        ticket on conformance/efficiency signals."""
        return cls(
            rules=[
                SloRule(
                    name="input_freshness",
                    signal="input_freshness",
                    objective=0.01,
                    description="cycles skipped on stale inputs",
                ),
                SloRule(
                    name="fail_static",
                    signal="fail_static",
                    objective=0.005,
                    description="fail-static withdrew the override set",
                ),
                SloRule(
                    name="collector_resync",
                    signal="collector_resync",
                    objective=0.01,
                    description="BMP collector reset or awaiting resync",
                ),
                SloRule(
                    name="projection_drift",
                    signal="projection_drift",
                    objective=0.005,
                    description=(
                        "incremental projection drifted from full replay"
                    ),
                ),
                SloRule(
                    name="load_conformance",
                    signal="load_conformance",
                    objective=0.02,
                    fast_window=10,
                    slow_window=120,
                    fast_burn=8.0,
                    severity="ticket",
                    description=(
                        "projected interface utilization disagrees with "
                        "the dataplane's measurement"
                    ),
                ),
                SloRule(
                    name="override_flap",
                    signal="override_flap",
                    objective=0.01,
                    severity="ticket",
                    description="a prefix's override is oscillating",
                ),
                SloRule(
                    name="steering_flap",
                    signal="steering_flap",
                    objective=0.01,
                    severity="ticket",
                    description=(
                        "a closed-loop steering key exceeded its "
                        "tier-transition budget"
                    ),
                ),
                SloRule(
                    name="cycle_runtime",
                    signal="cycle_runtime",
                    objective=0.05,
                    severity="ticket",
                    description="cycle compute time over budget",
                ),
                SloRule(
                    name="safety",
                    signal="safety_violation",
                    objective=0.001,
                    description="the safety checker found violations",
                ),
                SloRule(
                    name="ingest_backpressure",
                    signal="ingest_backpressure",
                    objective=0.02,
                    severity="ticket",
                    description=(
                        "the socket ingest path shed load (queue-full "
                        "drops, stale expiry, or TCP pauses)"
                    ),
                ),
            ]
        )

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "rules": [rule.to_dict() for rule in self.rules],
            "load_drift_tolerance": self.load_drift_tolerance,
            "flap_window_cycles": self.flap_window_cycles,
            "flap_threshold": self.flap_threshold,
            "runtime_budget_fraction": self.runtime_budget_fraction,
            "conformance_warmup_cycles": self.conformance_warmup_cycles,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SloSpec":
        rules_raw = data.get("rules", [])
        if not isinstance(rules_raw, list):
            raise SloError("spec 'rules' must be a list")
        try:
            return cls(
                rules=[SloRule.from_dict(entry) for entry in rules_raw],
                load_drift_tolerance=float(
                    data.get("load_drift_tolerance", 0.25)
                ),
                flap_window_cycles=int(
                    data.get("flap_window_cycles", 10)
                ),
                flap_threshold=int(data.get("flap_threshold", 8)),
                runtime_budget_fraction=float(
                    data.get("runtime_budget_fraction", 0.5)
                ),
                conformance_warmup_cycles=int(
                    data.get("conformance_warmup_cycles", 5)
                ),
            )
        except (TypeError, ValueError) as exc:
            raise SloError(f"bad SLO spec: {exc}") from exc

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SloSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SloError(f"spec is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise SloError("spec JSON must be an object")
        return cls.from_dict(data)

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path) -> "SloSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


@dataclass(frozen=True)
class AlertTransition:
    """One alert state change, for the report timeline."""

    time: float
    rule: str
    signal: str
    from_state: str
    to_state: str
    fast_burn: float
    slow_burn: float
    message: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "time": self.time,
            "rule": self.rule,
            "signal": self.signal,
            "from_state": self.from_state,
            "to_state": self.to_state,
            "fast_burn": self.fast_burn,
            "slow_burn": self.slow_burn,
            "message": self.message,
        }


@dataclass
class Alert:
    """The live state of one rule's alert."""

    rule: SloRule
    state: str = ALERT_OK
    since: float = 0.0
    fired_count: int = 0
    fast_burn: float = 0.0
    slow_burn: float = 0.0
    message: str = ""

    @property
    def firing(self) -> bool:
        return self.state == ALERT_FIRING

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule.name,
            "signal": self.rule.signal,
            "severity": self.rule.severity,
            "state": self.state,
            "since": self.since,
            "fired_count": self.fired_count,
            "fast_burn": round(self.fast_burn, 4),
            "slow_burn": round(self.slow_burn, 4),
            "message": self.message,
        }


@dataclass
class HealthReport:
    """One deployment's health, machine-readable and round-trippable."""

    name: str
    time: float
    cycles: int
    alerts: List[Dict[str, Any]] = field(default_factory=list)
    transitions: List[Dict[str, Any]] = field(default_factory=list)
    signals: Dict[str, float] = field(default_factory=dict)
    ever_fired: List[str] = field(default_factory=list)
    overhead_seconds: float = 0.0
    #: Closed-loop steering tier counts at report time ({} when the
    #: deployment runs without the v2 engine).
    steering: Dict[str, int] = field(default_factory=dict)

    @property
    def firing(self) -> List[Dict[str, Any]]:
        return [a for a in self.alerts if a["state"] == ALERT_FIRING]

    @property
    def ok(self) -> bool:
        return not self.firing

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "time": self.time,
            "cycles": self.cycles,
            "alerts": self.alerts,
            "transitions": self.transitions,
            "signals": self.signals,
            "ever_fired": self.ever_fired,
            "overhead_seconds": self.overhead_seconds,
            "steering": self.steering,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "HealthReport":
        return cls(
            name=str(data.get("name", "")),
            time=float(data.get("time", 0.0)),
            cycles=int(data.get("cycles", 0)),
            alerts=list(data.get("alerts", [])),
            transitions=list(data.get("transitions", [])),
            signals=dict(data.get("signals", {})),
            ever_fired=list(data.get("ever_fired", [])),
            overhead_seconds=float(data.get("overhead_seconds", 0.0)),
            steering={
                str(tier): int(count)
                for tier, count in dict(
                    data.get("steering", {})
                ).items()
            },
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "HealthReport":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("health report JSON must be an object")
        return cls.from_dict(data)

    def render(self) -> str:
        """Operator-facing summary."""
        firing = self.firing
        verdict = (
            f"{len(firing)} FIRING" if firing else "healthy"
        )
        lines = [
            f"health [{self.name}] t={self.time:.0f}: {verdict} "
            f"({self.cycles} cycles observed)"
        ]
        if self.steering:
            tiers = "  ".join(
                f"{tier}={self.steering.get(tier, 0)}"
                for tier in ("GREEN", "YELLOW", "RED")
            )
            lines.append(f"  steering tiers: {tiers}")
        for alert in self.alerts:
            flag = {
                ALERT_FIRING: "FIRING  ",
                ALERT_PENDING: "pending ",
                ALERT_RESOLVED: "resolved",
            }.get(str(alert["state"]), "ok      ")
            lines.append(
                f"  {flag} {alert['rule']:<18} "
                f"burn fast={alert['fast_burn']:>6.2f}x "
                f"slow={alert['slow_burn']:>6.2f}x "
                f"[{alert['severity']}]"
                + (f"  {alert['message']}" if alert["message"] else "")
            )
        if self.transitions:
            lines.append("recent transitions:")
            for entry in self.transitions[-8:]:
                lines.append(
                    f"  t={entry['time']:>9.1f}  {entry['rule']:<18} "
                    f"{entry['from_state']} -> {entry['to_state']}"
                    + (
                        f"  {entry['message']}"
                        if entry.get("message")
                        else ""
                    )
                )
        return "\n".join(lines)


#: Gauge encoding of alert states (resolved reads as 0: it is healthy).
_STATE_VALUES = {
    ALERT_OK: 0.0,
    ALERT_RESOLVED: 0.0,
    ALERT_PENDING: 1.0,
    ALERT_FIRING: 2.0,
}


class HealthEngine:
    """Per-cycle conformance monitors + burn-rate alerting for one PoP."""

    def __init__(
        self,
        spec: Optional[SloSpec] = None,
        telemetry=None,
        cycle_seconds: float = 30.0,
        store_capacity: int = 4096,
        sample_metrics: bool = True,
        max_flap_prefixes: int = 4096,
    ) -> None:
        self.spec = spec or SloSpec.default()
        self.telemetry = telemetry
        self.cycle_seconds = cycle_seconds
        self.sample_metrics = sample_metrics
        self.max_flap_prefixes = max_flap_prefixes
        self.store = TimeSeriesStore(capacity=store_capacity)
        self.alerts: Dict[str, Alert] = {
            rule.name: Alert(rule=rule) for rule in self.spec.rules
        }
        self.transitions: List[AlertTransition] = []
        self.cycles = 0
        #: Wall-clock seconds this engine has spent observing — the
        #: numerator of the <=5% overhead gate in the hot-path bench.
        self.overhead_seconds = 0.0
        # Monitor state.
        self._last_resets = 0
        self._last_violations = 0
        self._last_projected: Dict = {}
        self._flap_events: "OrderedDict[str, Deque[float]]" = (
            OrderedDict()
        )
        self._context: Dict[str, str] = {}
        self._last_backpressure = 0
        #: Last observed steering tier counts ({} without an engine).
        self._last_steering: Dict[str, int] = {}
        self._m_cycles = None
        self._m_transitions = None
        self._m_firing = None
        self._m_overhead = None
        if telemetry is not None:
            registry = telemetry.registry
            self._m_cycles = registry.counter(
                "health_cycles_total", "Cycles observed by health engine"
            )
            self._m_transitions = registry.counter(
                "health_alert_transitions_total",
                "Alert state transitions",
                ("rule", "state"),
            )
            self._m_firing = registry.gauge(
                "health_alerts_firing", "Alerts currently firing"
            )
            self._m_overhead = registry.counter(
                "health_overhead_seconds_total",
                "Wall-clock seconds spent in health observation",
            )

    # -- the per-cycle observation --------------------------------------------

    def on_cycle(
        self,
        now: float,
        report,
        controller=None,
        bmp=None,
        safety=None,
        utilization_of=None,
        ingest=None,
    ) -> List[AlertTransition]:
        """Observe one finished controller cycle.

        *report* is the cycle's :class:`~repro.core.monitoring.CycleReport`;
        the rest are the live objects the monitors read (all optional so
        the engine can run against partial stacks in tests).  *ingest*
        is the wire-ingest engine's stats view (anything with a
        ``backpressure_total`` attribute); when present, a cycle during
        which the ingest queues shed load raises ``ingest_backpressure``.
        Returns the alert transitions this observation caused.
        """
        started = _time.perf_counter()
        self.cycles += 1
        if self._m_cycles is not None:
            self._m_cycles.inc()

        signals = self._gather(now, report, controller, bmp, safety,
                               utilization_of, ingest)
        store = self.store
        for name, value in signals.items():
            store.record(f"slo:{name}", now, value)
        if self.sample_metrics and self.telemetry is not None:
            store.sample_registry(self.telemetry.registry, now)

        new_transitions = self._evaluate(now)

        elapsed = _time.perf_counter() - started
        self.overhead_seconds += elapsed
        if self._m_overhead is not None:
            self._m_overhead.inc(elapsed)
        return new_transitions

    # -- signal derivation ----------------------------------------------------

    def _gather(
        self, now, report, controller, bmp, safety, utilization_of,
        ingest=None,
    ) -> Dict[str, float]:
        context = self._context
        signals: Dict[str, float] = {}

        skipped = bool(report is not None and report.skipped)
        signals["input_freshness"] = 1.0 if skipped else 0.0
        if skipped:
            context["input_freshness"] = (
                f"cycle skipped: {report.skip_reason}"
            )

        fail_static = bool(skipped and report.withdrawn > 0)
        signals["fail_static"] = 1.0 if fail_static else 0.0
        if fail_static:
            context["fail_static"] = (
                f"withdrew {report.withdrawn} overrides fail-static"
            )

        if bmp is not None:
            resets = getattr(bmp, "resets", 0)
            reset_seen = resets != self._last_resets
            self._last_resets = resets
            resync = bool(getattr(bmp, "needs_resync", False))
            signals["collector_resync"] = (
                1.0 if (reset_seen or resync) else 0.0
            )
            if reset_seen or resync:
                context["collector_resync"] = (
                    f"collector resets={resets}"
                    + (", awaiting resync" if resync else "")
                )

        if safety is not None:
            count = len(safety.violations)
            fresh = count - self._last_violations
            self._last_violations = count
            signals["safety_violation"] = 1.0 if fresh > 0 else 0.0
            if fresh > 0:
                last = safety.violations[-1]
                context["safety_violation"] = (
                    f"{fresh} new violations (last: {last.invariant} "
                    f"on {last.subject})"
                )

        if controller is not None:
            drift = getattr(controller, "last_drift", None)
            drifted = bool(drift)
            signals["projection_drift"] = 1.0 if drifted else 0.0
            if drifted:
                worst = max(drift.values())
                context["projection_drift"] = (
                    f"{len(drift)} interfaces drifted "
                    f"(worst {worst:.3e} relative)"
                )
            signals["override_flap"] = self._observe_flaps(
                now, getattr(controller, "last_diff", None)
            )
            steering = getattr(controller, "steering", None)
            if steering is not None:
                flapping = steering.flap_signal(now)
                signals["steering_flap"] = flapping
                self._last_steering = steering.tier_counts()
                if flapping:
                    budget = steering.config.steering_flap_budget
                    window = steering.config.steering_flap_window_cycles
                    context["steering_flap"] = (
                        f"a steering key exceeded {budget} tier "
                        f"transitions in {window} cycles"
                    )

        if ingest is not None:
            total = int(getattr(ingest, "backpressure_total", 0))
            shed = total - self._last_backpressure
            self._last_backpressure = total
            signals["ingest_backpressure"] = 1.0 if shed > 0 else 0.0
            if shed > 0:
                context["ingest_backpressure"] = (
                    f"ingest shed load {shed} times since last cycle "
                    f"(queue drops / stale expiry / TCP pauses)"
                )

        if report is not None and not skipped:
            budget = (
                self.spec.runtime_budget_fraction * self.cycle_seconds
            )
            over = report.runtime_seconds > budget
            signals["cycle_runtime"] = 1.0 if over else 0.0
            if over:
                context["cycle_runtime"] = (
                    f"cycle took {report.runtime_seconds:.2f}s, "
                    f"budget {budget:.2f}s"
                )
            if controller is not None and utilization_of is not None:
                conformance = self._observe_conformance(
                    controller, utilization_of
                )
                if self.cycles > self.spec.conformance_warmup_cycles:
                    signals["load_conformance"] = conformance
        return signals

    def _observe_conformance(self, controller, utilization_of) -> float:
        """Compare the *previous* cycle's projected per-interface
        utilization against what the dataplane measured since.

        The off-by-one is deliberate: a cycle's projection describes the
        coming interval, so it is checked against the next observation,
        not the tick that already played out under the prior decision.
        """
        tolerance = self.spec.load_drift_tolerance
        previous = self._last_projected
        worst_gap = 0.0
        worst_key = None
        for key, projected in previous.items():
            observed = utilization_of(key)
            gap = abs(projected - observed)
            if gap > worst_gap:
                worst_gap = gap
                worst_key = key
        # Stash this cycle's projection for the next observation.
        assembler = controller.assembler
        current: Dict = {}
        for key, load in controller.last_final_loads.items():
            capacity = assembler.capacity_of(key).bits_per_second
            if capacity > 0.0:
                current[key] = load.bits_per_second / capacity
        self._last_projected = current
        if worst_gap > tolerance:
            name = (
                "/".join(worst_key)
                if isinstance(worst_key, tuple)
                else str(worst_key)
            )
            self._context["load_conformance"] = (
                f"{name}: projected vs observed utilization gap "
                f"{worst_gap:.2f} (tolerance {tolerance:.2f})"
            )
            return 1.0
        return 0.0

    def _observe_flaps(self, now: float, diff) -> float:
        """Track announce/withdraw transitions per prefix; 1.0 when any
        prefix crossed the flap threshold inside the window."""
        window = self.spec.flap_window_cycles * self.cycle_seconds
        threshold = self.spec.flap_threshold
        events = self._flap_events
        if diff is not None:
            for override in diff.announce:
                self._note_flap(str(override.prefix), now)
            for override in diff.withdraw:
                self._note_flap(str(override.prefix), now)
        edge = now - window
        worst_prefix = None
        worst_count = 0
        for prefix in list(events):
            times = events[prefix]
            while times and times[0] < edge:
                times.popleft()
            if not times:
                del events[prefix]
                continue
            if len(times) > worst_count:
                worst_count = len(times)
                worst_prefix = prefix
        if worst_count >= threshold:
            self._context["override_flap"] = (
                f"{worst_prefix}: {worst_count} override transitions "
                f"in {self.spec.flap_window_cycles} cycles"
            )
            return 1.0
        return 0.0

    def _note_flap(self, prefix: str, now: float) -> None:
        events = self._flap_events
        times = events.get(prefix)
        if times is None:
            if len(events) >= self.max_flap_prefixes:
                events.popitem(last=False)
            times = deque(maxlen=4 * self.spec.flap_threshold)
            events[prefix] = times
        else:
            events.move_to_end(prefix)
        times.append(now)

    # -- burn-rate evaluation -------------------------------------------------

    def _evaluate(self, now: float) -> List[AlertTransition]:
        new_transitions: List[AlertTransition] = []
        firing = 0
        for alert in self.alerts.values():
            rule = alert.rule
            series = self.store.get(f"slo:{rule.signal}")
            if series is None or not len(series):
                continue
            fast = series.mean(rule.fast_window) / rule.objective
            slow = series.mean(rule.slow_window) / rule.objective
            alert.fast_burn = fast
            alert.slow_burn = slow
            fast_hot = fast >= rule.fast_burn
            slow_hot = slow >= rule.slow_burn
            state = alert.state
            if fast_hot and slow_hot:
                target = ALERT_FIRING
            elif fast_hot:
                # Stay firing while the fast window is still hot.
                target = (
                    ALERT_FIRING
                    if state == ALERT_FIRING
                    else ALERT_PENDING
                )
            elif state in (ALERT_FIRING, ALERT_PENDING):
                target = ALERT_RESOLVED
            elif state == ALERT_RESOLVED:
                target = ALERT_OK
            else:
                target = ALERT_OK
            if target != state:
                transition = self._transition(now, alert, target)
                new_transitions.append(transition)
            if alert.state == ALERT_FIRING:
                firing += 1
        if self._m_firing is not None:
            self._m_firing.set(firing)
        return new_transitions

    def _transition(
        self, now: float, alert: Alert, target: str
    ) -> AlertTransition:
        rule = alert.rule
        message = ""
        if target in (ALERT_PENDING, ALERT_FIRING):
            message = self._context.get(rule.signal, "")
        transition = AlertTransition(
            time=now,
            rule=rule.name,
            signal=rule.signal,
            from_state=alert.state,
            to_state=target,
            fast_burn=alert.fast_burn,
            slow_burn=alert.slow_burn,
            message=message,
        )
        self.transitions.append(transition)
        alert.state = target
        alert.since = now
        alert.message = message
        if target == ALERT_FIRING:
            alert.fired_count += 1
        if self._m_transitions is not None:
            self._m_transitions.labels(
                rule=rule.name, state=target
            ).inc()
        if self.telemetry is not None:
            gauge = self.telemetry.registry.gauge(
                "health_alert_state",
                "Per-rule alert state (0 ok, 1 pending, 2 firing)",
                ("rule",),
            )
            gauge.labels(rule=rule.name).set(_STATE_VALUES[target])
            self.telemetry.audit.record_alert(
                now, rule.name, target, message
            )
        log_event(
            _log,
            "health.alert",
            time=now,
            rule=rule.name,
            signal=rule.signal,
            state=target,
            fast_burn=round(alert.fast_burn, 3),
            slow_burn=round(alert.slow_burn, 3),
            message=message,
        )
        return transition

    # -- reporting ------------------------------------------------------------

    def ever_fired(self) -> List[str]:
        """Rule names that reached ``firing`` at any point, sorted."""
        return sorted(
            alert.rule.name
            for alert in self.alerts.values()
            if alert.fired_count > 0
        )

    def firing_alerts(self) -> List[Alert]:
        return [a for a in self.alerts.values() if a.firing]

    def latest_signals(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for name in HEALTH_SIGNALS:
            series = self.store.get(f"slo:{name}")
            if series is not None:
                latest = series.latest()
                if latest is not None:
                    out[name] = latest[1]
        return out

    def report(
        self, now: Optional[float] = None, name: Optional[str] = None
    ) -> HealthReport:
        if name is None:
            name = (
                self.telemetry.name
                if self.telemetry is not None
                else "health"
            )
        if now is None:
            times = [
                series.latest()[0]
                for key in self.store.names()
                if key.startswith("slo:")
                and (series := self.store.get(key)) is not None
                and series.latest() is not None
            ]
            now = max(times, default=0.0)
        return HealthReport(
            name=name,
            time=now,
            cycles=self.cycles,
            alerts=[
                alert.to_dict()
                for _, alert in sorted(self.alerts.items())
            ],
            transitions=[t.to_dict() for t in self.transitions],
            signals=self.latest_signals(),
            ever_fired=self.ever_fired(),
            overhead_seconds=round(self.overhead_seconds, 6),
            steering=dict(self._last_steering),
        )
