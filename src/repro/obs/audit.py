"""The decision audit trail: why is this prefix on that interface?

Production Edge Fabric logs every override with enough context that an
operator can answer "why is this prefix on transit right now?" — the
cycle that installed it, the interface it was fleeing, the alternate it
was sent to, and what BGP would have done absent the controller.  This
module is that trail: the controller hands :class:`DecisionAudit` every
cycle's override diff, and :meth:`explain` reconstructs a prefix's full
override history after the fact.

Memory is bounded twice over: per-prefix histories are ring buffers, and
the number of tracked prefixes is capped with least-recently-touched
eviction, so the trail survives arbitrarily long runs.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from ..bgp.decision import DEFAULT_CONFIG, DecisionConfig
from ..bgp.route import Route

__all__ = [
    "decisive_step",
    "OverrideEvent",
    "PrefixExplanation",
    "DecisionAudit",
]


def decisive_step(
    preferred: Route,
    other: Route,
    config: DecisionConfig = DEFAULT_CONFIG,
) -> str:
    """Name the decision-process step at which *preferred* beats *other*.

    This is what "the BGP decision-step that would have won without the
    override" means for a detour: the preferred route would have carried
    the traffic, and this is the tiebreak that made it preferred over
    the alternate the controller chose instead.
    """
    if preferred.local_pref != other.local_pref:
        return "local_pref"
    if preferred.as_path_length != other.as_path_length:
        return "as_path_length"
    if preferred.attributes.origin != other.attributes.origin:
        return "origin"
    if config.always_compare_med or (
        preferred.next_hop_asn is not None
        and preferred.next_hop_asn == other.next_hop_asn
    ):
        if (preferred.attributes.med or 0) != (
            other.attributes.med or 0
        ):
            return "med"
    if preferred.is_ebgp != other.is_ebgp:
        return "ebgp_over_ibgp"
    if preferred.igp_cost != other.igp_cost:
        return "igp_cost"
    if config.prefer_oldest and (
        preferred.learned_at != other.learned_at
    ):
        return "oldest_route"
    return "peer_id_tiebreak"


def _interface_str(key: Optional[Tuple[str, str]]) -> str:
    return "/".join(key) if key else ""


@dataclass(frozen=True)
class OverrideEvent:
    """One audit-trail entry for one prefix in one controller cycle."""

    cycle_time: float
    #: "announce" (override installed), "keep" (still wanted, unchanged),
    #: "withdraw" (override removed; default routing restored),
    #: "violation" (a safety invariant broke while this prefix — or
    #: ``*`` for PoP-wide breaches — was involved), "alert" (a health
    #: rule changed state), or "steering" (the closed-loop engine moved
    #: this prefix's tier; the note names the vote that did it).
    action: str
    prefix: str
    rate_bps: float = 0.0
    #: The overloaded interface the prefix was moved *off* (its
    #: BGP-preferred placement — the cause of the detour).
    from_interface: str = ""
    #: The alternate interface the prefix was moved *onto*.
    to_interface: str = ""
    target_session: str = ""
    preferred_session: str = ""
    #: The decision step at which the preferred route would have won.
    decisive_step: str = ""
    #: Free-form context: the invariant and message for violations.
    note: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "cycle_time": self.cycle_time,
            "action": self.action,
            "prefix": self.prefix,
            "rate_bps": self.rate_bps,
            "from_interface": self.from_interface,
            "to_interface": self.to_interface,
            "target_session": self.target_session,
            "preferred_session": self.preferred_session,
            "decisive_step": self.decisive_step,
            "note": self.note,
        }


@dataclass(frozen=True)
class PrefixExplanation:
    """The answer to ``explain(prefix)``."""

    prefix: str
    events: Tuple[OverrideEvent, ...]
    #: True when the last event leaves an override installed.
    active: bool
    #: Under aggregated injection: the covering prefix the injector
    #: actually holds for this override ("" when installed as-is).
    installed_as: str = ""

    def render(self) -> str:
        """Operator-facing, one line per event."""
        if not self.events:
            return f"{self.prefix}: no override history"
        lines = [
            f"{self.prefix}: "
            f"{'override ACTIVE' if self.active else 'no active override'}"
            f" ({len(self.events)} recorded events)"
        ]
        if self.active and self.installed_as:
            lines.append(
                f"  installed as covering aggregate {self.installed_as}"
            )
        for event in self.events:
            if event.action == "withdraw":
                lines.append(
                    f"  t={event.cycle_time:>9.1f}  withdraw  "
                    "back to BGP-preferred via "
                    f"{event.preferred_session or 'n/a'}"
                )
            elif event.action == "violation":
                lines.append(
                    f"  t={event.cycle_time:>9.1f}  VIOLATION {event.note}"
                )
            elif event.action == "alert":
                lines.append(
                    f"  t={event.cycle_time:>9.1f}  ALERT     {event.note}"
                )
            elif event.action == "steering":
                lines.append(
                    f"  t={event.cycle_time:>9.1f}  steering  "
                    + (
                        f"via {event.preferred_session}: "
                        if event.preferred_session
                        else ""
                    )
                    + event.note
                )
            else:
                lines.append(
                    f"  t={event.cycle_time:>9.1f}  {event.action:<8}  "
                    f"{event.from_interface} -> {event.to_interface} "
                    f"(session {event.target_session}, "
                    f"{event.rate_bps / 1e6:.1f} Mbps); BGP preferred "
                    f"{event.preferred_session} by {event.decisive_step}"
                )
        return "\n".join(lines)


class DecisionAudit:
    """Bounded per-prefix override history across controller cycles."""

    def __init__(
        self,
        per_prefix_capacity: int = 256,
        max_prefixes: int = 4096,
        decision_config: DecisionConfig = DEFAULT_CONFIG,
    ) -> None:
        self.per_prefix_capacity = per_prefix_capacity
        self.max_prefixes = max_prefixes
        self.decision_config = decision_config
        self._events: "OrderedDict[str, Deque[OverrideEvent]]" = (
            OrderedDict()
        )
        self.recorded = 0
        self.evicted_prefixes = 0
        # Desired prefix -> installed covering aggregate, as handed over
        # by the controller each cycle.  Kept as the raw Prefix-keyed
        # mapping and stringified lazily on the first explain() against
        # it — the mapping can span tens of thousands of prefixes and
        # explain is an operator-paced query.
        self._covering_src: Optional[Dict] = None
        self._covering_strs: Optional[Dict[str, str]] = None

    # -- recording ------------------------------------------------------------

    def _append(self, event: OverrideEvent) -> None:
        history = self._events.get(event.prefix)
        if history is None:
            if len(self._events) >= self.max_prefixes:
                self._events.popitem(last=False)
                self.evicted_prefixes += 1
            history = deque(maxlen=self.per_prefix_capacity)
            self._events[event.prefix] = history
        else:
            self._events.move_to_end(event.prefix)
        history.append(event)
        self.recorded += 1

    def record_cycle(
        self,
        now: float,
        diff,
        detours: Dict,
        record_keeps: bool = True,
    ) -> None:
        """Record one cycle's override diff.

        *diff* is the :class:`~repro.core.overrides.OverrideDiff` the
        controller committed; *detours* the allocator's prefix →
        :class:`~repro.core.allocator.Detour` map (which still knows the
        preferred route and the overloaded interface each move fled).
        Withdraw events precede announces so a replaced override reads
        as withdraw-then-announce in its history.

        ``record_keeps=False`` drops the per-cycle "keep" events for
        standing overrides — the full-table configuration, where that
        work is O(standing overrides) per cycle and the bounded trail
        evicts most of it anyway.  A prefix's history then reads
        announce → withdraw with its active state still exact.
        """
        for override in diff.withdraw:
            self._append(
                OverrideEvent(
                    cycle_time=now,
                    action="withdraw",
                    prefix=str(override.prefix),
                    rate_bps=override.rate_at_decision.bits_per_second,
                    target_session=override.target_session,
                )
            )
        actions = [("announce", diff.announce)]
        if record_keeps:
            actions.append(("keep", diff.keep))
        for action, overrides in actions:
            for override in overrides:
                detour = detours.get(override.prefix)
                if detour is None:
                    continue
                self._append(
                    OverrideEvent(
                        cycle_time=now,
                        action=action,
                        prefix=str(override.prefix),
                        rate_bps=detour.rate.bits_per_second,
                        from_interface=_interface_str(
                            detour.from_interface
                        ),
                        to_interface=_interface_str(
                            detour.to_interface
                        ),
                        target_session=detour.target.source.name,
                        preferred_session=detour.preferred.source.name,
                        decisive_step=decisive_step(
                            detour.preferred,
                            detour.target,
                            self.decision_config,
                        ),
                    )
                )

    def set_installed_aggregates(self, covering_of: Dict) -> None:
        """Record how desired overrides map onto installed routes.

        *covering_of* maps each desired prefix to the covering prefix
        the injector actually holds for it (aggregated injection).
        Replaced wholesale each cycle; the stringified index is rebuilt
        lazily only when an ``explain`` actually needs it.
        """
        if covering_of is self._covering_src:
            return
        self._covering_src = covering_of
        self._covering_strs = None

    def installed_as(self, prefix: object) -> str:
        """The covering aggregate installed for *prefix*, or ''."""
        if not self._covering_src:
            return ""
        if self._covering_strs is None:
            self._covering_strs = {
                str(member): str(covering)
                for member, covering in self._covering_src.items()
                if member != covering
            }
        return self._covering_strs.get(str(prefix), "")

    def record_violation(
        self, now: float, subject: str, invariant: str, message: str
    ) -> None:
        """Append a safety-invariant breach to the trail.

        *subject* is the prefix involved when there is one, or a
        descriptive string for PoP-wide breaches (kept under ``*`` so it
        doesn't pollute per-prefix histories).
        """
        prefix = subject if "/" in subject else "*"
        self._append(
            OverrideEvent(
                cycle_time=now,
                action="violation",
                prefix=prefix,
                note=f"{invariant}: {message}",
            )
        )

    def record_alert(
        self,
        now: float,
        rule: str,
        state: str,
        message: str,
        subject: str = "*",
    ) -> None:
        """Append a health-alert transition to the trail.

        Health alerts are PoP-wide by default (kept under ``*`` like
        PoP-wide violations); pass a prefix *subject* when an alert
        attributes a specific prefix (e.g. an override flap).
        """
        prefix = subject if "/" in subject else "*"
        note = f"{rule} -> {state}"
        if message:
            note += f" ({message})"
        self._append(
            OverrideEvent(
                cycle_time=now,
                action="alert",
                prefix=prefix,
                note=note,
            )
        )

    def record_steering(
        self,
        now: float,
        prefix: str,
        from_tier: str,
        to_tier: str,
        votes,
        path: str = "",
    ) -> None:
        """Append a closed-loop steering tier transition to the trail.

        *votes* is the rendered verdict of every signal that voted this
        cycle — the answer ``explain(prefix)`` gives to "why did the
        tier change".  *path* names the preferred session being judged.
        """
        note = f"{from_tier} -> {to_tier}"
        if votes:
            note += f" [{'; '.join(votes)}]"
        self._append(
            OverrideEvent(
                cycle_time=now,
                action="steering",
                prefix=prefix,
                preferred_session=path,
                note=note,
            )
        )

    # -- queries -------------------------------------------------------------------

    @staticmethod
    def _last_override_action(events) -> str:
        """Most recent announce/keep/withdraw, skipping violations."""
        for event in reversed(events):
            if event.action in ("announce", "keep", "withdraw"):
                return event.action
        return ""

    def explain(self, prefix: object) -> PrefixExplanation:
        """Full recorded override history for *prefix* (str or Prefix)."""
        key = str(prefix)
        events = tuple(self._events.get(key, ()))
        active = self._last_override_action(events) in (
            "announce",
            "keep",
        )
        return PrefixExplanation(
            prefix=key,
            events=events,
            active=active,
            installed_as=self.installed_as(key) if active else "",
        )

    def detoured_prefixes(self) -> List[str]:
        """Prefixes whose history ends with an installed override."""
        return [
            prefix
            for prefix, events in self._events.items()
            if self._last_override_action(events) in ("announce", "keep")
        ]

    def violations(self) -> List[OverrideEvent]:
        """Every recorded violation event, in insertion order per prefix."""
        return [
            event
            for event in self.events()
            if event.action == "violation"
        ]

    def alerts(self) -> List[OverrideEvent]:
        """Every recorded health-alert event, in insertion order per prefix."""
        return [
            event for event in self.events() if event.action == "alert"
        ]

    def prefixes(self) -> List[str]:
        return list(self._events)

    def events(self) -> List[OverrideEvent]:
        """Every buffered event, oldest-touched prefix first."""
        out: List[OverrideEvent] = []
        for history in self._events.values():
            out.extend(history)
        return out

    def __len__(self) -> int:
        return sum(len(history) for history in self._events.values())
