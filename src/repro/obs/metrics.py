"""Typed metrics registry: counters, gauges, histograms with label sets.

Production Edge Fabric exports per-interface and per-decision counters to
the same monitoring fabric as the rest of the CDN; this module is that
export surface for the reproduction.  A :class:`MetricsRegistry` owns a
namespace of metrics; each metric owns a family of *series* keyed by its
label values.  The design borrows the Prometheus client model:

- registration is idempotent (``registry.counter("x")`` twice returns the
  same object; a kind clash raises),
- hot paths pre-bind label sets once (``metric.labels(pop="a")``) so a
  per-tick increment is one dict store, no string formatting,
- ``snapshot()`` is a plain-dict view suitable for JSON, asserts in
  tests, and cross-process merging (worker registries travel through
  pickles and are summed back into the parent's, see :meth:`merge`).

Exporters: :meth:`to_prometheus` emits the text exposition format;
:meth:`to_json` the snapshot as JSON.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "process_rss_bytes",
]


def process_rss_bytes() -> float:
    """This process's resident set size in bytes (0.0 if unknowable).

    Reads ``/proc/self/statm`` where procfs exists (Linux); falls back
    to ``getrusage`` peak RSS elsewhere.  Used by the fleet to report
    per-worker memory, where the shared-substrate pool's win (one set
    of physical pages for the table, however many workers) shows up.
    """
    try:
        with open("/proc/self/statm", "rb") as statm:
            fields = statm.read().split()
        import resource

        page = resource.getpagesize()
        return float(int(fields[1]) * page)
    except (OSError, IndexError, ValueError):
        pass
    try:  # pragma: no cover - non-procfs platforms
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS bytes; procfs handled Linux above.
        return float(peak)
    except Exception:  # pragma: no cover
        return 0.0

#: Histogram bucket upper bounds in seconds (Prometheus-style defaults,
#: trimmed to the latency range a simulated tick/cycle actually spans).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

LabelValues = Tuple[str, ...]


def _label_string(labelnames: Sequence[str], values: LabelValues) -> str:
    """Prometheus-style label rendering: ``a="x",b="y"`` ('' if none)."""
    return ",".join(
        f'{name}="{value}"' for name, value in zip(labelnames, values)
    )


class _Metric:
    """Shared plumbing for one metric family (one name, many series)."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)

    def _values_key(self, labels: Dict[str, str]) -> LabelValues:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: labels {sorted(labels)} do not match "
                f"declared {sorted(self.labelnames)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)


class Counter(_Metric):
    """Monotonically increasing value (per label set)."""

    kind = "counter"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._values: Dict[LabelValues, float] = {}

    def labels(self, **labels: str) -> "BoundCounter":
        return BoundCounter(self, self._values_key(labels))

    def inc(self, amount: float = 1.0) -> None:
        """Increment the label-less series (shorthand for ``labels()``)."""
        if amount < 0:
            raise ValueError("counters only go up")
        key: LabelValues = ()
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(self._values_key(labels), 0.0)

    def series(self) -> Dict[LabelValues, float]:
        return dict(self._values)

    def _reset(self) -> None:
        self._values.clear()


class BoundCounter:
    """A counter pre-bound to one label set — hot-path increment."""

    __slots__ = ("_values", "_key")

    def __init__(self, parent: Counter, key: LabelValues) -> None:
        self._values = parent._values
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        self._values[self._key] = (
            self._values.get(self._key, 0.0) + amount
        )


class Gauge(_Metric):
    """A value that can go up and down (per label set)."""

    kind = "gauge"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._values: Dict[LabelValues, float] = {}

    def labels(self, **labels: str) -> "BoundGauge":
        return BoundGauge(self, self._values_key(labels))

    def set(self, value: float) -> None:
        self._values[()] = float(value)

    def add(self, amount: float) -> None:
        self._values[()] = self._values.get((), 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(self._values_key(labels), 0.0)

    def series(self) -> Dict[LabelValues, float]:
        return dict(self._values)

    def _reset(self) -> None:
        self._values.clear()


class BoundGauge:
    """A gauge pre-bound to one label set."""

    __slots__ = ("_values", "_key")

    def __init__(self, parent: Gauge, key: LabelValues) -> None:
        self._values = parent._values
        self._key = key

    def set(self, value: float) -> None:
        self._values[self._key] = float(value)

    def add(self, amount: float) -> None:
        self._values[self._key] = (
            self._values.get(self._key, 0.0) + amount
        )


class _HistogramSeries:
    """Bucket counts + sum + count for one label set."""

    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, bucket_count: int) -> None:
        self.bucket_counts = [0] * (bucket_count + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0


class Histogram(_Metric):
    """Bucketed distribution of observed values (seconds by default)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        ordered = tuple(sorted(buckets))
        if not ordered:
            raise ValueError("histogram needs at least one bucket")
        self.buckets: Tuple[float, ...] = ordered
        self._series: Dict[LabelValues, _HistogramSeries] = {}

    def labels(self, **labels: str) -> "BoundHistogram":
        return BoundHistogram(self, self._values_key(labels))

    def _series_for(self, key: LabelValues) -> _HistogramSeries:
        series = self._series.get(key)
        if series is None:
            series = _HistogramSeries(len(self.buckets))
            self._series[key] = series
        return series

    def observe(self, value: float) -> None:
        self._observe((), value)

    def _observe(self, key: LabelValues, value: float) -> None:
        series = self._series_for(key)
        series.bucket_counts[bisect_left(self.buckets, value)] += 1
        series.sum += value
        series.count += 1

    def series(self) -> Dict[LabelValues, _HistogramSeries]:
        return dict(self._series)

    def count(self, **labels: str) -> int:
        series = self._series.get(self._values_key(labels))
        return series.count if series is not None else 0

    def _reset(self) -> None:
        self._series.clear()


class BoundHistogram:
    """A histogram pre-bound to one label set."""

    __slots__ = ("_parent", "_key")

    def __init__(self, parent: Histogram, key: LabelValues) -> None:
        self._parent = parent
        self._key = key

    def observe(self, value: float) -> None:
        self._parent._observe(self._key, value)


class MetricsRegistry:
    """One namespace of metrics; the unit of export and merging."""

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    # -- registration (idempotent) -------------------------------------------

    def _register(self, metric: _Metric) -> _Metric:
        existing = self._metrics.get(metric.name)
        if existing is not None:
            if type(existing) is not type(metric) or (
                existing.labelnames != metric.labelnames
            ):
                raise ValueError(
                    f"metric {metric.name!r} already registered as "
                    f"{existing.kind} with labels {existing.labelnames}"
                )
            return existing
        self._metrics[metric.name] = metric
        return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._register(Counter(name, help, labelnames))

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._register(Gauge(name, help, labelnames))

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram(name, help, labelnames, buckets))

    # -- views -----------------------------------------------------------------

    def metrics(self) -> List[_Metric]:
        return [self._metrics[name] for name in sorted(self._metrics)]

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def reset(self) -> None:
        """Zero every series; registrations (and bound handles) survive."""
        for metric in self._metrics.values():
            metric._reset()

    def snapshot(self) -> Dict:
        """Plain-dict view: {kind: {name: {label_string: value}}}.

        Histogram series render as ``{"count", "sum", "buckets"}`` where
        buckets map the upper bound (``"+Inf"`` last) to a *cumulative*
        count, mirroring the Prometheus exposition semantics.
        """
        out: Dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for metric in self.metrics():
            if isinstance(metric, (Counter, Gauge)):
                section = out[
                    "counters" if metric.kind == "counter" else "gauges"
                ]
                section[metric.name] = {
                    _label_string(metric.labelnames, key): value
                    for key, value in sorted(metric.series().items())
                }
            elif isinstance(metric, Histogram):
                rendered = {}
                for key, series in sorted(metric.series().items()):
                    cumulative = 0
                    buckets = {}
                    bounds = [str(b) for b in metric.buckets] + ["+Inf"]
                    for bound, count in zip(
                        bounds, series.bucket_counts
                    ):
                        cumulative += count
                        buckets[bound] = cumulative
                    rendered[
                        _label_string(metric.labelnames, key)
                    ] = {
                        "count": series.count,
                        "sum": series.sum,
                        "buckets": buckets,
                    }
                out["histograms"][metric.name] = rendered
        return out

    # -- exporters --------------------------------------------------------------

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format."""
        lines: List[str] = []
        for metric in self.metrics():
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, (Counter, Gauge)):
                for key, value in sorted(metric.series().items()):
                    labels = _label_string(metric.labelnames, key)
                    suffix = f"{{{labels}}}" if labels else ""
                    lines.append(f"{metric.name}{suffix} {value}")
            elif isinstance(metric, Histogram):
                for key, series in sorted(metric.series().items()):
                    base = _label_string(metric.labelnames, key)
                    cumulative = 0
                    bounds = [str(b) for b in metric.buckets] + ["+Inf"]
                    for bound, count in zip(
                        bounds, series.bucket_counts
                    ):
                        cumulative += count
                        labels = (
                            f'{base},le="{bound}"'
                            if base
                            else f'le="{bound}"'
                        )
                        lines.append(
                            f"{metric.name}_bucket{{{labels}}} "
                            f"{cumulative}"
                        )
                    suffix = f"{{{base}}}" if base else ""
                    lines.append(
                        f"{metric.name}_sum{suffix} {series.sum}"
                    )
                    lines.append(
                        f"{metric.name}_count{suffix} {series.count}"
                    )
        return "\n".join(lines) + "\n"

    # -- merging ------------------------------------------------------------------

    def merge(
        self,
        other: "MetricsRegistry",
        extra_labels: Optional[Dict[str, str]] = None,
    ) -> None:
        """Fold *other*'s series into this registry.

        Counters and histogram series add; gauges overwrite (last write
        wins — merge disjoint label sets, e.g. one per PoP, when the
        distinction matters).  ``extra_labels`` are appended to every
        incoming series' label set, which is how per-worker registries
        become one fleet registry without colliding.  The extra labels
        are appended in sorted name order, so merged output never
        depends on the caller's dict insertion order (two merges with
        the same extras always agree on label layout).
        """
        extra_items = sorted((extra_labels or {}).items())
        extra_names = tuple(name for name, _ in extra_items)
        extra_values = tuple(str(value) for _, value in extra_items)
        for theirs in other.metrics():
            labelnames = theirs.labelnames + extra_names
            if isinstance(theirs, Counter):
                mine = self.counter(theirs.name, theirs.help, labelnames)
                for key, value in theirs.series().items():
                    full = key + extra_values
                    mine._values[full] = (
                        mine._values.get(full, 0.0) + value
                    )
            elif isinstance(theirs, Gauge):
                mine = self.gauge(theirs.name, theirs.help, labelnames)
                for key, value in theirs.series().items():
                    mine._values[key + extra_values] = value
            elif isinstance(theirs, Histogram):
                mine = self.histogram(
                    theirs.name, theirs.help, labelnames, theirs.buckets
                )
                if mine.buckets != theirs.buckets:
                    raise ValueError(
                        f"histogram {theirs.name!r} bucket mismatch"
                    )
                for key, series in theirs.series().items():
                    target = mine._series_for(key + extra_values)
                    for i, count in enumerate(series.bucket_counts):
                        target.bucket_counts[i] += count
                    target.sum += series.sum
                    target.count += series.count
