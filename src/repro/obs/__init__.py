"""repro.obs — the observability subsystem for the tick pipeline.

Four pieces, one facade:

- :mod:`repro.obs.metrics` — typed metrics registry (counters, gauges,
  histograms with label sets) with Prometheus-text and JSON exporters,
- :mod:`repro.obs.tracing` — ring-buffered spans over the tick hot path,
- :mod:`repro.obs.audit` — the per-prefix decision audit trail behind
  ``explain(prefix)``,
- :mod:`repro.obs.logs` — structured run logs with a JSONL emitter.

:class:`repro.obs.Telemetry` bundles the first three per deployment and
is what the controller, pipeline, simulator and collectors are
instrumented against.
"""

from .audit import (
    DecisionAudit,
    OverrideEvent,
    PrefixExplanation,
    decisive_step,
)
from .logs import JsonlHandler, configure_logging, get_logger, log_event
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .telemetry import Telemetry, merge_registries
from .tracing import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "DecisionAudit",
    "OverrideEvent",
    "PrefixExplanation",
    "decisive_step",
    "JsonlHandler",
    "configure_logging",
    "get_logger",
    "log_event",
    "Telemetry",
    "merge_registries",
]
