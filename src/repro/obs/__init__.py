"""repro.obs — the observability subsystem for the tick pipeline.

Six pieces, one facade:

- :mod:`repro.obs.metrics` — typed metrics registry (counters, gauges,
  histograms with label sets) with Prometheus-text and JSON exporters,
- :mod:`repro.obs.tracing` — ring-buffered spans over the tick hot path,
- :mod:`repro.obs.audit` — the per-prefix decision audit trail behind
  ``explain(prefix)``,
- :mod:`repro.obs.logs` — structured run logs with a JSONL emitter,
- :mod:`repro.obs.timeseries` — fixed-capacity ring time series sampled
  from the registry once per controller cycle,
- :mod:`repro.obs.health` — conformance monitors and SLO burn-rate
  alerting over all of the above.

:class:`repro.obs.Telemetry` bundles the recording pieces per deployment
and is what the controller, pipeline, simulator and collectors are
instrumented against; :class:`repro.obs.HealthEngine` is the layer that
*watches* what they record.
"""

from .audit import (
    DecisionAudit,
    OverrideEvent,
    PrefixExplanation,
    decisive_step,
)
from .health import (
    Alert,
    AlertTransition,
    HealthEngine,
    HealthReport,
    SloError,
    SloRule,
    SloSpec,
)
from .logs import JsonlHandler, configure_logging, get_logger, log_event
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .telemetry import Telemetry, merge_registries
from .timeseries import TimeSeries, TimeSeriesStore
from .tracing import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "DecisionAudit",
    "OverrideEvent",
    "PrefixExplanation",
    "decisive_step",
    "JsonlHandler",
    "configure_logging",
    "get_logger",
    "log_event",
    "Telemetry",
    "merge_registries",
    "TimeSeries",
    "TimeSeriesStore",
    "Alert",
    "AlertTransition",
    "HealthEngine",
    "HealthReport",
    "SloError",
    "SloRule",
    "SloSpec",
]
