"""Structured run logs on top of :mod:`logging`, with a JSONL emitter.

Everything under the ``repro`` logger namespace follows one convention:
the log *message* is a short event name (``controller.cycle``,
``example.progress``) and machine-readable context rides in the record's
``fields`` dict (attached via :func:`log_event`).  The console handler
renders ``event k=v k=v`` for humans; :class:`JsonlHandler` writes one
JSON object per line for offline analysis — the paper's "every decision
logged" in file form.

Quiet by default: :func:`configure_logging` leaves the namespace at
WARNING unless ``verbose`` is set (the CLI's ``-v``), so examples and
experiments do not spray progress chatter over their actual output.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO, Optional

__all__ = [
    "get_logger",
    "log_event",
    "configure_logging",
    "JsonlHandler",
]

ROOT_NAME = "repro"

#: Marker attribute so configure_logging() can replace only the handlers
#: it installed, staying idempotent across calls (and across tests).
_MANAGED = "_repro_obs_managed"


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` namespace (accepts module names)."""
    if not name:
        return logging.getLogger(ROOT_NAME)
    if name == ROOT_NAME or name.startswith(ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_NAME}.{name}")


def log_event(
    logger: logging.Logger,
    event: str,
    level: int = logging.INFO,
    **fields: object,
) -> None:
    """Emit a structured event: message is the event name, fields ride along."""
    if logger.isEnabledFor(level):
        logger.log(level, event, extra={"fields": fields})


class _ConsoleFormatter(logging.Formatter):
    """``LEVEL logger: event k=v k=v`` — terse, grep-friendly."""

    def format(self, record: logging.LogRecord) -> str:
        base = (
            f"{record.levelname.lower():<7} {record.name}: "
            f"{record.getMessage()}"
        )
        fields = getattr(record, "fields", None)
        if fields:
            rendered = " ".join(
                f"{key}={value}" for key, value in fields.items()
            )
            return f"{base} {rendered}"
        return base


class JsonlHandler(logging.Handler):
    """Appends one JSON object per record to a file."""

    def __init__(self, path, level: int = logging.INFO) -> None:
        # Open before Handler.__init__ registers us with the logging
        # machinery: a bad path must not leave a half-constructed
        # handler behind for logging.shutdown() to trip over.
        stream: IO[str] = open(str(path), "a", encoding="utf-8")
        super().__init__(level)
        self.path = str(path)
        self._stream: Optional[IO[str]] = stream

    def emit(self, record: logging.LogRecord) -> None:
        if self._stream is None:
            return
        payload = {
            "ts": record.created,
            "level": record.levelname,
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if fields:
            payload["fields"] = {
                key: _jsonable(value) for key, value in fields.items()
            }
        try:
            self._stream.write(
                json.dumps(payload, sort_keys=True) + "\n"
            )
            self._stream.flush()
        except Exception:
            self.handleError(record)

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None
        super().close()


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def configure_logging(
    verbose: bool = False,
    jsonl_path=None,
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """Set up the ``repro`` logger namespace; safe to call repeatedly.

    Console output goes to *stream* (default stderr, keeping stdout for
    program results); ``jsonl_path`` additionally appends every record
    as a JSON line.  Returns the namespace root logger.
    """
    root = logging.getLogger(ROOT_NAME)
    root.setLevel(logging.INFO if verbose else logging.WARNING)
    root.propagate = False
    for handler in list(root.handlers):
        if getattr(handler, _MANAGED, False):
            root.removeHandler(handler)
            handler.close()
    console = logging.StreamHandler(stream or sys.stderr)
    console.setFormatter(_ConsoleFormatter())
    setattr(console, _MANAGED, True)
    root.addHandler(console)
    if jsonl_path is not None:
        jsonl = JsonlHandler(jsonl_path)
        setattr(jsonl, _MANAGED, True)
        root.addHandler(jsonl)
    return root
