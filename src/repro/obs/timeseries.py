"""Fixed-capacity time series: the health engine's memory.

A :class:`TimeSeries` is a ring of ``(time, value)`` points —
``deque(maxlen=capacity)`` — so an arbitrarily long run keeps a bounded,
most-recent window of every signal it tracks.  A :class:`TimeSeriesStore`
names many of them, samples whole metric registries once per controller
cycle (:meth:`~TimeSeriesStore.sample_registry`), and round-trips
through JSONL for offline analysis.

Everything here is plain data (deques of float tuples), picklable, and
cheap on the hot path: one append per recorded point, queries that walk
only the tail they need (``reversed(deque)`` starts at the newest
point), no numpy, no wall clock.
"""

from __future__ import annotations

import json
import math
from collections import deque
from itertools import islice
from typing import Deque, Dict, Iterable, List, Optional, Tuple

__all__ = ["TimeSeries", "TimeSeriesStore", "DEFAULT_SERIES_CAPACITY"]

#: Points kept per series.  At the paper's 30-second cycle this is more
#: than three weeks of history per signal; memory is two floats a point.
DEFAULT_SERIES_CAPACITY = 65_536

Point = Tuple[float, float]


class TimeSeries:
    """One named signal: a bounded ring of (time, value) points."""

    __slots__ = ("name", "capacity", "_points", "recorded")

    def __init__(
        self, name: str, capacity: int = DEFAULT_SERIES_CAPACITY
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.name = name
        self.capacity = capacity
        self._points: Deque[Point] = deque(maxlen=capacity)
        #: Points ever recorded; ``recorded - len(self)`` fell off the ring.
        self.recorded = 0

    # -- recording ------------------------------------------------------------

    def record(self, time: float, value: float) -> None:
        self._points.append((time, float(value)))
        self.recorded += 1

    # -- queries -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._points)

    @property
    def dropped(self) -> int:
        """Points evicted by the ring so far."""
        return self.recorded - len(self._points)

    def points(self) -> List[Point]:
        """Every buffered point, oldest first."""
        return list(self._points)

    def latest(self) -> Optional[Point]:
        return self._points[-1] if self._points else None

    def last(self, n: int) -> List[Point]:
        """The newest *n* points, oldest-of-them first."""
        if n <= 0:
            return []
        tail = list(islice(reversed(self._points), n))
        tail.reverse()
        return tail

    def values(self, n: Optional[int] = None) -> List[float]:
        if n is None:
            return [value for _, value in self._points]
        return [value for _, value in self.last(n)]

    def mean(self, n: Optional[int] = None) -> float:
        values = self.values(n)
        if not values:
            return 0.0
        return sum(values) / len(values)

    def delta(self, n: Optional[int] = None) -> float:
        """Newest value minus the oldest value of the last *n* points."""
        window = self.last(n) if n is not None else self.points()
        if len(window) < 2:
            return 0.0
        return window[-1][1] - window[0][1]

    def rate(self, n: Optional[int] = None) -> float:
        """:meth:`delta` per second of elapsed sample time."""
        window = self.last(n) if n is not None else self.points()
        if len(window) < 2:
            return 0.0
        elapsed = window[-1][0] - window[0][0]
        if elapsed <= 0.0:
            return 0.0
        return (window[-1][1] - window[0][1]) / elapsed

    def percentile(self, q: float, n: Optional[int] = None) -> float:
        """The *q*-th percentile (0..100) of the last *n* values."""
        values = sorted(self.values(n))
        if not values:
            return 0.0
        if len(values) == 1:
            return values[0]
        rank = (max(0.0, min(100.0, q)) / 100.0) * (len(values) - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            return values[low]
        weight = rank - low
        return values[low] * (1.0 - weight) + values[high] * weight

    def window(
        self, seconds: float, now: Optional[float] = None
    ) -> List[Point]:
        """Points with ``time >= now - seconds`` (*now* defaults to the
        newest point's time)."""
        if not self._points:
            return []
        edge = (now if now is not None else self._points[-1][0]) - seconds
        out: List[Point] = []
        for point in reversed(self._points):
            if point[0] < edge:
                break
            out.append(point)
        out.reverse()
        return out


class TimeSeriesStore:
    """A namespace of :class:`TimeSeries`, one unit of sampling/export."""

    def __init__(self, capacity: int = DEFAULT_SERIES_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._series: Dict[str, TimeSeries] = {}

    # -- access ------------------------------------------------------------

    def series(self, name: str) -> TimeSeries:
        """The named series, created empty on first use."""
        series = self._series.get(name)
        if series is None:
            series = TimeSeries(name, self.capacity)
            self._series[name] = series
        return series

    def get(self, name: str) -> Optional[TimeSeries]:
        return self._series.get(name)

    def names(self) -> List[str]:
        return sorted(self._series)

    def __len__(self) -> int:
        return len(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def record(self, name: str, time: float, value: float) -> None:
        self.series(name).record(time, value)

    # -- registry sampling -------------------------------------------------

    def sample_registry(
        self, registry, now: float, prefix: str = ""
    ) -> int:
        """Sample every counter/gauge series (and histogram count/sum)
        of *registry* as one point per series at time *now*.

        Series are keyed ``[prefix]name{label="value",...}`` — the same
        rendering the exporters use — so a sampled store lines up with
        the Prometheus view.  Returns the number of points recorded.
        """
        from .metrics import Counter, Gauge, Histogram, _label_string

        points = 0
        for metric in registry.metrics():
            if isinstance(metric, (Counter, Gauge)):
                for key, value in metric.series().items():
                    labels = _label_string(metric.labelnames, key)
                    suffix = f"{{{labels}}}" if labels else ""
                    self.record(
                        f"{prefix}{metric.name}{suffix}", now, value
                    )
                    points += 1
            elif isinstance(metric, Histogram):
                for key, series in metric.series().items():
                    labels = _label_string(metric.labelnames, key)
                    suffix = f"{{{labels}}}" if labels else ""
                    base = f"{prefix}{metric.name}{suffix}"
                    self.record(f"{base}:count", now, series.count)
                    self.record(f"{base}:sum", now, series.sum)
                    points += 2
        return points

    # -- persistence -------------------------------------------------------

    def write_jsonl(self, path) -> int:
        """Persist the store as JSONL; returns lines written.

        One ``meta`` line for the store, one ``series`` header per
        series (carrying its capacity and lifetime ``recorded`` count),
        then one ``point`` line per buffered point.
        """
        lines = 0
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps(
                    {"kind": "meta", "capacity": self.capacity},
                    sort_keys=True,
                )
                + "\n"
            )
            lines += 1
            for name in self.names():
                series = self._series[name]
                handle.write(
                    json.dumps(
                        {
                            "kind": "series",
                            "name": name,
                            "capacity": series.capacity,
                            "recorded": series.recorded,
                        },
                        sort_keys=True,
                    )
                    + "\n"
                )
                lines += 1
                for time, value in series.points():
                    handle.write(
                        json.dumps(
                            {
                                "kind": "point",
                                "series": name,
                                "t": time,
                                "v": value,
                            },
                            sort_keys=True,
                        )
                        + "\n"
                    )
                    lines += 1
        return lines

    @classmethod
    def load_jsonl(cls, path) -> "TimeSeriesStore":
        """Rebuild a store written by :meth:`write_jsonl`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_jsonl_lines(handle)

    @classmethod
    def from_jsonl_lines(cls, lines: Iterable[str]) -> "TimeSeriesStore":
        store: Optional[TimeSeriesStore] = None
        recorded: Dict[str, int] = {}
        for raw in lines:
            raw = raw.strip()
            if not raw:
                continue
            entry = json.loads(raw)
            kind = entry.get("kind")
            if kind == "meta":
                store = cls(capacity=int(entry["capacity"]))
            elif kind == "series":
                if store is None:
                    raise ValueError("series line before meta line")
                name = str(entry["name"])
                series = TimeSeries(name, int(entry["capacity"]))
                store._series[name] = series
                recorded[name] = int(entry.get("recorded", 0))
            elif kind == "point":
                if store is None:
                    raise ValueError("point line before meta line")
                store.series(str(entry["series"])).record(
                    float(entry["t"]), float(entry["v"])
                )
            else:
                raise ValueError(f"unknown timeseries line kind {kind!r}")
        if store is None:
            raise ValueError("no meta line: not a timeseries JSONL file")
        # Restore lifetime counts: replaying only the buffered points
        # undercounts series that had already wrapped.
        for name, count in recorded.items():
            series = store._series.get(name)
            if series is not None:
                series.recorded = max(series.recorded, count)
        return store
