"""The :class:`Telemetry` facade: one handle for a deployment's signals.

A deployment (one PoP's full stack) owns one ``Telemetry`` bundling its
metrics registry, span tracer, and decision-audit trail.  The object is
deliberately picklable — no open files, no loggers, no closures — so
fork-based fleet workers can carry their telemetry back to the parent,
which merges the per-worker registries into fleet-wide series (see
:meth:`MetricsRegistry.merge`).

``write_jsonl`` persists everything as one JSONL stream (metrics, spans,
audit events, each line tagged with ``kind``), the format the CI bench
uploads and :meth:`snapshot` mirrors in-memory.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Tuple

from .audit import DecisionAudit, PrefixExplanation
from .metrics import MetricsRegistry
from .tracing import Tracer

__all__ = ["Telemetry", "merge_registries"]


class Telemetry:
    """Metrics + tracing + decision audit for one deployment."""

    def __init__(
        self,
        name: str = "default",
        span_capacity: int = 4096,
        audit_per_prefix: int = 256,
        audit_max_prefixes: int = 4096,
    ) -> None:
        self.name = name
        self.registry = MetricsRegistry()
        self.tracer = Tracer(capacity=span_capacity)
        self.tracer.set_drop_counter(
            self.registry.counter(
                "tracer_dropped_spans_total",
                "Spans evicted from the tracer ring buffer",
            )
        )
        self.audit = DecisionAudit(
            per_prefix_capacity=audit_per_prefix,
            max_prefixes=audit_max_prefixes,
        )

    # -- queries -------------------------------------------------------------------

    def explain(self, prefix: object) -> PrefixExplanation:
        """Delegate to the audit trail: why is this prefix detoured?"""
        return self.audit.explain(prefix)

    def snapshot(self) -> Dict:
        return {
            "name": self.name,
            "metrics": self.registry.snapshot(),
            "spans": {
                "buffered": len(self.tracer),
                "recorded": self.tracer.recorded,
                "dropped": self.tracer.dropped,
                "by_name": self.tracer.counts(),
            },
            "audit": {
                "events": len(self.audit),
                "prefixes": len(self.audit.prefixes()),
                "detoured": self.audit.detoured_prefixes(),
            },
        }

    # -- persistence ----------------------------------------------------------------

    def write_jsonl(self, path) -> int:
        """Write metrics, spans and audit events as JSONL; returns lines."""
        lines = 0
        with open(path, "w", encoding="utf-8") as handle:
            meta = {"kind": "meta", "name": self.name}
            handle.write(json.dumps(meta, sort_keys=True) + "\n")
            lines += 1
            snapshot = self.registry.snapshot()
            for kind_key, metric_kind in (
                ("counters", "counter"),
                ("gauges", "gauge"),
                ("histograms", "histogram"),
            ):
                for name, series in snapshot[kind_key].items():
                    for labels, value in series.items():
                        handle.write(
                            json.dumps(
                                {
                                    "kind": "metric",
                                    "type": metric_kind,
                                    "metric": name,
                                    "labels": labels,
                                    "value": value,
                                },
                                sort_keys=True,
                            )
                            + "\n"
                        )
                        lines += 1
            for span in self.tracer.to_dicts():
                span_line = {"kind": "span"}
                span_line.update(span)
                handle.write(
                    json.dumps(span_line, sort_keys=True) + "\n"
                )
                lines += 1
            for event in self.audit.events():
                event_line = {"kind": "audit"}
                event_line.update(event.to_dict())
                handle.write(
                    json.dumps(event_line, sort_keys=True) + "\n"
                )
                lines += 1
        return lines


def merge_registries(
    parts: Iterable[Tuple[str, MetricsRegistry]],
    label: str = "pop",
) -> MetricsRegistry:
    """Merge named registries into one, tagging series with *label*."""
    merged = MetricsRegistry()
    for name, registry in parts:
        merged.merge(registry, extra_labels={label: name})
    return merged
