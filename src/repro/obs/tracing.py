"""Span-based tracing of the tick hot path, ring-buffered.

A :class:`Tracer` records named spans — ``dataplane.tick``,
``sflow.collect``, ``controller.cycle``, ``bgp.decision`` — each with its
wall-clock duration and a small tag payload.  Memory is bounded: spans
live in a ring buffer (``deque(maxlen=capacity)``); once full, the oldest
span falls off and ``dropped`` counts what was lost, so a week-long run
cannot OOM the process while the most recent history stays queryable.

The recording cost is two ``perf_counter()`` calls and one deque append
per span; spans are per-tick / per-cycle granularity (a handful per
tick), never per-prefix, which keeps the tick-time overhead far inside
the <5% budget the benchmark gate enforces.
"""

from __future__ import annotations

import time as _time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Deque, Dict, Iterator, List, Optional, Tuple

__all__ = ["Span", "Tracer"]


@dataclass(frozen=True)
class Span:
    """One finished span: a named, tagged, timed section."""

    name: str
    started: float  # perf_counter timestamp, comparable within-process
    duration: float  # seconds
    tags: Tuple[Tuple[str, object], ...] = ()

    @property
    def duration_ms(self) -> float:
        return self.duration * 1000.0

    def tag_dict(self) -> Dict[str, object]:
        return dict(self.tags)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "started": self.started,
            "duration_s": self.duration,
            "tags": self.tag_dict(),
        }


class Tracer:
    """Bounded-memory span recorder."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._spans: Deque[Span] = deque(maxlen=capacity)
        self.recorded = 0  # total spans ever finished
        self.dropped = 0  # spans evicted by the ring buffer
        # Optional bound registry counter mirroring ``dropped`` so
        # silent span loss shows up on dashboards (set by Telemetry).
        self._drop_counter = None

    def set_drop_counter(self, counter) -> None:
        """Mirror ring evictions into a bound metrics counter."""
        self._drop_counter = counter

    # -- recording ------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **tags: object) -> Iterator[None]:
        """Time a section: ``with tracer.span("controller.cycle"): ...``"""
        started = _time.perf_counter()
        try:
            yield
        finally:
            self.record(
                name, started, _time.perf_counter() - started, tags
            )

    def record(
        self,
        name: str,
        started: float,
        duration: float,
        tags: Optional[Dict[str, object]] = None,
    ) -> None:
        """Append one pre-timed span (the non-context-manager path)."""
        if len(self._spans) == self.capacity:
            self.dropped += 1
            if self._drop_counter is not None:
                self._drop_counter.inc()
        self.recorded += 1
        self._spans.append(
            Span(
                name=name,
                started=started,
                duration=duration,
                tags=tuple(sorted(tags.items())) if tags else (),
            )
        )

    # -- queries -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._spans)

    def recent(
        self, limit: Optional[int] = None, name: Optional[str] = None
    ) -> List[Span]:
        """Most recent spans, newest last, optionally filtered by name."""
        spans: List[Span] = [
            span
            for span in self._spans
            if name is None or span.name == name
        ]
        if limit is not None:
            spans = spans[-limit:]
        return spans

    def durations(self, name: str) -> List[float]:
        return [s.duration for s in self._spans if s.name == name]

    def counts(self) -> Dict[str, int]:
        """Buffered span count per name (post-eviction view)."""
        out: Dict[str, int] = {}
        for span in self._spans:
            out[span.name] = out.get(span.name, 0) + 1
        return out

    def to_dicts(self) -> List[Dict[str, object]]:
        return [span.to_dict() for span in self._spans]

    def clear(self) -> None:
        self._spans.clear()
