"""sFlow v5-style datagram codec.

Peering routers sample 1-in-N packets on their egress interfaces and ship
the samples to a collector, which scales the samples back up to estimate
per-destination traffic rates — the paper's traffic input.

The framing follows sFlow v5 (datagram header, flow samples with sequence
numbers, sampling rate, sample pool, interface indices).  The sampled
packet payload is a compact fixed-layout record carrying what the
simulation's "packets" contain — family, source and destination address,
frame length, DSCP — standing in for the raw Ethernet header a production
agent would excerpt.  All scaling semantics (rate, pool, drops) are
faithful, which is what matters to estimator accuracy.

Encoding and decoding both run on precompiled :class:`struct.Struct`
templates: the agents emit hundreds of thousands of samples per simulated
day, so the codec offers flat pack/unpack fast paths
(:func:`pack_flow_sample`, :func:`iter_sample_fields`) that skip the
per-sample dataclass construction the object API performs.  The wire
format is identical either way.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from ..netbase.addr import Family
from ..netbase.errors import MalformedMessage, TruncatedMessage

__all__ = [
    "PacketRecord",
    "FlowSample",
    "SflowDatagram",
    "SFLOW_VERSION",
    "pack_flow_sample",
    "pack_datagram",
    "iter_sample_fields",
    "datagram_meta",
]

SFLOW_VERSION = 5

_RECORD_LEN = 4 + 16 + 16 + 4 + 4  # family, src, dst, frame_len, dscp+pad

#: Datagram header: version, agent address (16B), sub-agent id,
#: sequence, uptime (ms), sample count.
_HEADER = struct.Struct("!I16sIIII")
#: One flat flow sample: sequence, sampling rate, sample pool, drops,
#: input ifIndex, output ifIndex, AFI, src (16B), dst (16B), frame
#: length, DSCP + 3 pad bytes.
_SAMPLE = struct.Struct("!IIIIIII16s16sIB3x")
_SAMPLE_LEN = _SAMPLE.size  # 68
_SAMPLE_HEAD = struct.Struct("!IIIIII")
_U32 = struct.Struct("!I")


def pack_flow_sample(
    sequence: int,
    sampling_rate: int,
    sample_pool: int,
    drops: int,
    input_ifindex: int,
    output_ifindex: int,
    family: int,
    src_bytes: bytes,
    dst_bytes: bytes,
    frame_length: int,
    dscp: int,
) -> bytes:
    """Flat fast-path encoder for one flow sample (no dataclasses)."""
    return _SAMPLE.pack(
        sequence,
        sampling_rate,
        sample_pool,
        drops,
        input_ifindex,
        output_ifindex,
        family,
        src_bytes,
        dst_bytes,
        frame_length,
        dscp,
    )


def pack_datagram(
    agent_address_bytes: bytes,
    sub_agent_id: int,
    sequence: int,
    uptime_ms: int,
    encoded_samples: List[bytes],
) -> bytes:
    """Assemble a datagram from already-encoded samples in one pass."""
    return _HEADER.pack(
        SFLOW_VERSION,
        agent_address_bytes,
        sub_agent_id,
        sequence,
        uptime_ms,
        len(encoded_samples),
    ) + b"".join(encoded_samples)


def iter_sample_fields(
    data,
) -> Tuple[int, Iterator[Tuple[int, int, int, int, int]]]:
    """Fast-path decode: (agent address, iterator of sample tuples).

    Each yielded tuple is (sampling rate, output ifIndex, AFI,
    destination address, frame length) — exactly what the collector's
    scaling and aggregation need, without building per-sample objects.
    Validation (version, truncation, trailing bytes, zero sampling
    rate, bad AFI) matches the object API.

    *data* may be ``bytes`` or a ``memoryview`` over a receive buffer —
    the socket frontends decode straight out of their preallocated
    buffers without copying the datagram first.
    """
    if len(data) < _HEADER.size:
        raise TruncatedMessage("sFlow datagram header truncated")
    version, agent_bytes, _sub, _seq, _uptime, count = _HEADER.unpack_from(
        data, 0
    )
    if version != SFLOW_VERSION:
        raise MalformedMessage(f"unsupported sFlow version {version}")
    if _HEADER.size + count * _SAMPLE_LEN != len(data):
        if _HEADER.size + count * _SAMPLE_LEN > len(data):
            raise TruncatedMessage("flow sample truncated")
        raise MalformedMessage("trailing bytes in sFlow datagram")
    agent_address = int.from_bytes(agent_bytes, "big")

    def samples() -> Iterator[Tuple[int, int, int, int, int]]:
        offset = _HEADER.size
        unpack = _SAMPLE.unpack_from
        for _ in range(count):
            (
                _sequence,
                sampling_rate,
                _pool,
                _drops,
                _in_if,
                out_if,
                afi,
                _src,
                dst_bytes,
                frame_length,
                _dscp,
            ) = unpack(data, offset)
            if sampling_rate == 0:
                raise MalformedMessage("sampling rate of zero")
            if afi not in (1, 2):
                raise MalformedMessage(f"bad record AFI {afi}")
            yield (
                sampling_rate,
                out_if,
                afi,
                int.from_bytes(dst_bytes, "big"),
                frame_length,
            )
            offset += _SAMPLE_LEN

    return agent_address, samples()


def datagram_meta(data) -> Tuple[int, int]:
    """Header-only decode: (agent address, datagram sequence number).

    The lockstep replay driver uses this to restore agent emission
    order over a UDP socket (which may reorder) without paying a full
    sample decode, and the frontends use the agent address to pre-sort
    per router.  Accepts ``bytes`` or ``memoryview``.
    """
    if len(data) < _HEADER.size:
        raise TruncatedMessage("sFlow datagram header truncated")
    version, agent_bytes, _sub, sequence, _uptime, _count = (
        _HEADER.unpack_from(data, 0)
    )
    if version != SFLOW_VERSION:
        raise MalformedMessage(f"unsupported sFlow version {version}")
    return int.from_bytes(agent_bytes, "big"), sequence


@dataclass(frozen=True)
class PacketRecord:
    """One sampled packet."""

    family: Family
    src_address: int
    dst_address: int
    frame_length: int
    dscp: int = 0

    def encode(self) -> bytes:
        return (
            _U32.pack(int(self.family))
            + self.src_address.to_bytes(16, "big")
            + self.dst_address.to_bytes(16, "big")
            + _U32.pack(self.frame_length)
            + struct.pack("!B3x", self.dscp)
        )

    @classmethod
    def decode(cls, data: bytes, offset: int) -> Tuple["PacketRecord", int]:
        if offset + _RECORD_LEN > len(data):
            raise TruncatedMessage("packet record truncated")
        afi = _U32.unpack_from(data, offset)[0]
        try:
            family = Family(afi)
        except ValueError as exc:
            raise MalformedMessage(f"bad record AFI {afi}") from exc
        src = int.from_bytes(data[offset + 4 : offset + 20], "big")
        dst = int.from_bytes(data[offset + 20 : offset + 36], "big")
        frame_length = _U32.unpack_from(data, offset + 36)[0]
        dscp = data[offset + 40]
        return (
            cls(
                family=family,
                src_address=src,
                dst_address=dst,
                frame_length=frame_length,
                dscp=dscp,
            ),
            offset + _RECORD_LEN,
        )


@dataclass(frozen=True)
class FlowSample:
    """One flow sample: a sampled packet plus sampling metadata.

    ``sampling_rate`` is the N of 1-in-N sampling: each sample stands for
    approximately N packets.  ``sample_pool`` is the total number of
    packets that were candidates for sampling since the agent started —
    collectors can detect sampling gaps by watching it.
    """

    sequence: int
    sampling_rate: int
    sample_pool: int
    drops: int
    input_ifindex: int
    output_ifindex: int
    record: PacketRecord

    def encode(self) -> bytes:
        record = self.record
        return pack_flow_sample(
            self.sequence,
            self.sampling_rate,
            self.sample_pool,
            self.drops,
            self.input_ifindex,
            self.output_ifindex,
            int(record.family),
            record.src_address.to_bytes(16, "big"),
            record.dst_address.to_bytes(16, "big"),
            record.frame_length,
            record.dscp,
        )

    @classmethod
    def decode(cls, data: bytes, offset: int) -> Tuple["FlowSample", int]:
        if offset + 24 > len(data):
            raise TruncatedMessage("flow sample header truncated")
        (
            sequence,
            sampling_rate,
            sample_pool,
            drops,
            input_ifindex,
            output_ifindex,
        ) = _SAMPLE_HEAD.unpack_from(data, offset)
        if sampling_rate == 0:
            raise MalformedMessage("sampling rate of zero")
        record, end = PacketRecord.decode(data, offset + 24)
        return (
            cls(
                sequence=sequence,
                sampling_rate=sampling_rate,
                sample_pool=sample_pool,
                drops=drops,
                input_ifindex=input_ifindex,
                output_ifindex=output_ifindex,
                record=record,
            ),
            end,
        )


@dataclass(frozen=True)
class SflowDatagram:
    """A batch of flow samples from one agent."""

    agent_address: int
    sequence: int
    uptime_ms: int
    samples: Tuple[FlowSample, ...]
    sub_agent_id: int = 0

    def encode(self) -> bytes:
        return pack_datagram(
            self.agent_address.to_bytes(16, "big"),
            self.sub_agent_id,
            self.sequence,
            self.uptime_ms,
            [sample.encode() for sample in self.samples],
        )

    @classmethod
    def decode(cls, data: bytes) -> "SflowDatagram":
        if len(data) < 36:
            raise TruncatedMessage("sFlow datagram header truncated")
        version = _U32.unpack_from(data, 0)[0]
        if version != SFLOW_VERSION:
            raise MalformedMessage(f"unsupported sFlow version {version}")
        agent_address = int.from_bytes(data[4:20], "big")
        sub_agent_id, sequence, uptime_ms, count = struct.unpack_from(
            "!IIII", data, 20
        )
        # Check the claimed sample count against the actual length up
        # front: a garbage count field must not drive the decode loop
        # (all samples are fixed-size, so the arithmetic is exact).
        expected = 36 + count * _SAMPLE_LEN
        if expected > len(data):
            raise TruncatedMessage("flow sample truncated")
        if expected < len(data):
            raise MalformedMessage("trailing bytes in sFlow datagram")
        samples: List[FlowSample] = []
        offset = 36
        for _ in range(count):
            sample, offset = FlowSample.decode(data, offset)
            samples.append(sample)
        if offset != len(data):
            raise MalformedMessage("trailing bytes in sFlow datagram")
        return cls(
            agent_address=agent_address,
            sequence=sequence,
            uptime_ms=uptime_ms,
            samples=tuple(samples),
            sub_agent_id=sub_agent_id,
        )
