"""sFlow v5-style datagram codec.

Peering routers sample 1-in-N packets on their egress interfaces and ship
the samples to a collector, which scales the samples back up to estimate
per-destination traffic rates — the paper's traffic input.

The framing follows sFlow v5 (datagram header, flow samples with sequence
numbers, sampling rate, sample pool, interface indices).  The sampled
packet payload is a compact fixed-layout record carrying what the
simulation's "packets" contain — family, source and destination address,
frame length, DSCP — standing in for the raw Ethernet header a production
agent would excerpt.  All scaling semantics (rate, pool, drops) are
faithful, which is what matters to estimator accuracy.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Tuple

from ..netbase.addr import Family
from ..netbase.errors import MalformedMessage, TruncatedMessage

__all__ = ["PacketRecord", "FlowSample", "SflowDatagram", "SFLOW_VERSION"]

SFLOW_VERSION = 5

_RECORD_LEN = 4 + 16 + 16 + 4 + 4  # family, src, dst, frame_len, dscp+pad


@dataclass(frozen=True)
class PacketRecord:
    """One sampled packet."""

    family: Family
    src_address: int
    dst_address: int
    frame_length: int
    dscp: int = 0

    def encode(self) -> bytes:
        return (
            struct.pack("!I", int(self.family))
            + self.src_address.to_bytes(16, "big")
            + self.dst_address.to_bytes(16, "big")
            + struct.pack("!I", self.frame_length)
            + struct.pack("!B3x", self.dscp)
        )

    @classmethod
    def decode(cls, data: bytes, offset: int) -> Tuple["PacketRecord", int]:
        if offset + _RECORD_LEN > len(data):
            raise TruncatedMessage("packet record truncated")
        afi = struct.unpack_from("!I", data, offset)[0]
        try:
            family = Family(afi)
        except ValueError as exc:
            raise MalformedMessage(f"bad record AFI {afi}") from exc
        src = int.from_bytes(data[offset + 4 : offset + 20], "big")
        dst = int.from_bytes(data[offset + 20 : offset + 36], "big")
        frame_length = struct.unpack_from("!I", data, offset + 36)[0]
        dscp = data[offset + 40]
        return (
            cls(
                family=family,
                src_address=src,
                dst_address=dst,
                frame_length=frame_length,
                dscp=dscp,
            ),
            offset + _RECORD_LEN,
        )


@dataclass(frozen=True)
class FlowSample:
    """One flow sample: a sampled packet plus sampling metadata.

    ``sampling_rate`` is the N of 1-in-N sampling: each sample stands for
    approximately N packets.  ``sample_pool`` is the total number of
    packets that were candidates for sampling since the agent started —
    collectors can detect sampling gaps by watching it.
    """

    sequence: int
    sampling_rate: int
    sample_pool: int
    drops: int
    input_ifindex: int
    output_ifindex: int
    record: PacketRecord

    def encode(self) -> bytes:
        return (
            struct.pack(
                "!IIIIII",
                self.sequence,
                self.sampling_rate,
                self.sample_pool,
                self.drops,
                self.input_ifindex,
                self.output_ifindex,
            )
            + self.record.encode()
        )

    @classmethod
    def decode(cls, data: bytes, offset: int) -> Tuple["FlowSample", int]:
        if offset + 24 > len(data):
            raise TruncatedMessage("flow sample header truncated")
        (
            sequence,
            sampling_rate,
            sample_pool,
            drops,
            input_ifindex,
            output_ifindex,
        ) = struct.unpack_from("!IIIIII", data, offset)
        if sampling_rate == 0:
            raise MalformedMessage("sampling rate of zero")
        record, end = PacketRecord.decode(data, offset + 24)
        return (
            cls(
                sequence=sequence,
                sampling_rate=sampling_rate,
                sample_pool=sample_pool,
                drops=drops,
                input_ifindex=input_ifindex,
                output_ifindex=output_ifindex,
                record=record,
            ),
            end,
        )


@dataclass(frozen=True)
class SflowDatagram:
    """A batch of flow samples from one agent."""

    agent_address: int
    sequence: int
    uptime_ms: int
    samples: Tuple[FlowSample, ...]
    sub_agent_id: int = 0

    def encode(self) -> bytes:
        header = struct.pack("!I", SFLOW_VERSION)
        header += self.agent_address.to_bytes(16, "big")
        header += struct.pack(
            "!III",
            self.sub_agent_id,
            self.sequence,
            self.uptime_ms,
        )
        header += struct.pack("!I", len(self.samples))
        return header + b"".join(sample.encode() for sample in self.samples)

    @classmethod
    def decode(cls, data: bytes) -> "SflowDatagram":
        if len(data) < 36:
            raise TruncatedMessage("sFlow datagram header truncated")
        version = struct.unpack_from("!I", data, 0)[0]
        if version != SFLOW_VERSION:
            raise MalformedMessage(f"unsupported sFlow version {version}")
        agent_address = int.from_bytes(data[4:20], "big")
        sub_agent_id, sequence, uptime_ms, count = struct.unpack_from(
            "!IIII", data, 20
        )
        samples: List[FlowSample] = []
        offset = 36
        for _ in range(count):
            sample, offset = FlowSample.decode(data, offset)
            samples.append(sample)
        if offset != len(data):
            raise MalformedMessage("trailing bytes in sFlow datagram")
        return cls(
            agent_address=agent_address,
            sequence=sequence,
            uptime_ms=uptime_ms,
            samples=tuple(samples),
            sub_agent_id=sub_agent_id,
        )
