"""sFlow sampling agent: 1-in-N packet sampling on a router's interfaces.

The dataplane simulator hands the agent the flows it forwarded during a
tick; the agent draws how many of each flow's packets the 1-in-N sampler
would have caught (binomially, matching real per-packet random sampling)
and emits encoded datagrams.

Sampling noise is the point: the controller's traffic estimates inherit
exactly the variance a production sFlow pipeline has, and the sampling-
rate ablation (A3) turns this knob.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from ..netbase.addr import Family
from ..netbase.errors import TrafficError
from .datagram import pack_datagram, pack_flow_sample

__all__ = ["ObservedFlow", "SflowAgent", "InterfaceIndexMap"]

_MAX_SAMPLES_PER_DATAGRAM = 64


@dataclass(frozen=True)
class ObservedFlow:
    """What the dataplane tells the agent it forwarded.

    ``bytes_sent``/``packets`` cover one observation interval on one
    egress interface.
    """

    family: Family
    src_address: int
    dst_address: int
    bytes_sent: float
    packets: float
    egress_interface: str
    dscp: int = 0


class InterfaceIndexMap:
    """Bidirectional interface-name <-> ifIndex mapping for one router."""

    def __init__(self, interfaces: Sequence[str]) -> None:
        self._index_of: Dict[str, int] = {}
        self._name_of: Dict[int, str] = {}
        for offset, name in enumerate(interfaces):
            index = offset + 1  # ifIndex 0 is reserved
            self._index_of[name] = index
            self._name_of[index] = name

    def index_of(self, name: str) -> int:
        try:
            return self._index_of[name]
        except KeyError:
            raise TrafficError(f"unknown interface {name!r}") from None

    def name_of(self, index: int) -> str:
        try:
            return self._name_of[index]
        except KeyError:
            raise TrafficError(f"unknown ifIndex {index}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._index_of

    def names(self) -> List[str]:
        return list(self._index_of)


class SflowAgent:
    """Per-router sampling agent."""

    def __init__(
        self,
        router: str,
        agent_address: int,
        interfaces: InterfaceIndexMap,
        sampling_rate: int = 4096,
        seed: int = 0,
    ) -> None:
        if sampling_rate < 1:
            raise TrafficError(f"sampling rate must be >= 1: {sampling_rate}")
        self.router = router
        self.agent_address = agent_address
        self._agent_address_bytes = agent_address.to_bytes(16, "big")
        self.interfaces = interfaces
        self.sampling_rate = sampling_rate
        self._rng = np.random.default_rng(seed)
        self._datagram_seq = 0
        self._sample_seq = 0
        self._sample_pool = 0
        self._started_at_ms = 0

    def observe(
        self, flows: Iterable[ObservedFlow], now: float
    ) -> List[bytes]:
        """Sample one interval's flows; returns encoded datagrams.

        Samples are packed straight to wire bytes through precompiled
        struct templates — no per-sample object construction — producing
        datagrams byte-identical to the object-based codec.
        """
        samples: List[bytes] = []
        sampling_rate = self.sampling_rate
        for flow in flows:
            packets = max(0.0, flow.packets)
            if packets == 0.0:
                continue
            # The pool is a u32 on the wire and wraps, as in real agents.
            self._sample_pool = (
                self._sample_pool + int(round(packets))
            ) & 0xFFFFFFFF
            sampled = self._draw_sample_count(packets)
            if sampled == 0:
                continue
            frame_length = int(
                max(64, round(flow.bytes_sent / max(packets, 1.0)))
            )
            ifindex = self.interfaces.index_of(flow.egress_interface)
            family = int(flow.family)
            src_bytes = flow.src_address.to_bytes(16, "big")
            dst_bytes = flow.dst_address.to_bytes(16, "big")
            pool = self._sample_pool
            sequence = self._sample_seq
            for _ in range(sampled):
                sequence += 1
                samples.append(
                    pack_flow_sample(
                        sequence,
                        sampling_rate,
                        pool,
                        0,  # drops
                        0,  # input ifIndex
                        ifindex,
                        family,
                        src_bytes,
                        dst_bytes,
                        frame_length,
                        flow.dscp,
                    )
                )
            self._sample_seq = sequence
        return self._package(samples, now)

    def _draw_sample_count(self, packets: float) -> int:
        """How many of *packets* the 1-in-N sampler catches."""
        if self.sampling_rate == 1:
            return int(round(packets))
        whole = int(packets)
        fraction = packets - whole
        count = 0
        if whole:
            count += int(
                self._rng.binomial(whole, 1.0 / self.sampling_rate)
            )
        if fraction and self._rng.random() < fraction / self.sampling_rate:
            count += 1
        return count

    def _package(
        self, samples: List[bytes], now: float
    ) -> List[bytes]:
        datagrams: List[bytes] = []
        uptime_ms = int(now * 1000) - self._started_at_ms
        for start in range(0, len(samples), _MAX_SAMPLES_PER_DATAGRAM):
            batch = samples[start : start + _MAX_SAMPLES_PER_DATAGRAM]
            self._datagram_seq += 1
            datagrams.append(
                pack_datagram(
                    self._agent_address_bytes,
                    0,  # sub-agent id
                    self._datagram_seq,
                    uptime_ms,
                    batch,
                )
            )
        return datagrams
