"""sFlow collector: samples in, per-prefix and per-interface rates out.

Scaling follows the sFlow standard: a sample taken at 1-in-N stands for N
packets, so its frame length contributes ``frame_length * N`` bytes to the
estimate.

Destination addresses are aggregated to *routed prefixes* via a resolver
callback — in the full pipeline that is a longest-prefix match against the
BMP collector's RIB, the same join production Edge Fabric performs between
its Scuba traffic tables and its route store.  Addresses that resolve to
no routed prefix are counted separately (``unroutable_bytes``) so tests
can assert nothing silently disappears.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..netbase.addr import Family, Prefix
from ..netbase.errors import MalformedMessage, TrafficError
from ..netbase.units import Rate
from .agent import InterfaceIndexMap
from .datagram import SflowDatagram
from .estimator import RateEstimator

__all__ = ["SflowCollector"]

#: Resolves a destination address to the routed prefix covering it.
PrefixResolver = Callable[[Family, int], Optional[Prefix]]

#: Key identifying an egress interface PoP-wide.
InterfaceKey = Tuple[str, str]  # (router, interface name)


class SflowCollector:
    """Aggregates sampled traffic into rate estimates."""

    def __init__(
        self,
        resolver: PrefixResolver,
        window_seconds: float = 60.0,
    ) -> None:
        self._resolver = resolver
        self._interfaces_by_router: Dict[str, InterfaceIndexMap] = {}
        self._router_by_agent: Dict[int, str] = {}
        self._prefix_rates: RateEstimator[Prefix] = RateEstimator(
            window_seconds
        )
        self._interface_rates: RateEstimator[InterfaceKey] = RateEstimator(
            window_seconds
        )
        self._prefix_interface_rates: RateEstimator[
            Tuple[Prefix, InterfaceKey]
        ] = RateEstimator(window_seconds)
        self.unroutable_bytes = 0.0
        self.datagrams = 0
        self.samples = 0

    def register_router(
        self,
        router: str,
        agent_address: int,
        interfaces: InterfaceIndexMap,
    ) -> None:
        """Teach the collector which agent is which router."""
        self._router_by_agent[agent_address] = router
        self._interfaces_by_router[router] = interfaces

    # -- ingestion ------------------------------------------------------------

    def feed(self, data: bytes, now: float) -> None:
        """Consume one encoded datagram."""
        datagram = SflowDatagram.decode(data)
        router = self._router_by_agent.get(datagram.agent_address)
        if router is None:
            raise TrafficError(
                f"datagram from unregistered agent "
                f"{datagram.agent_address:#x}"
            )
        index_map = self._interfaces_by_router[router]
        self.datagrams += 1
        for sample in datagram.samples:
            self.samples += 1
            estimated_bytes = float(
                sample.record.frame_length * sample.sampling_rate
            )
            interface_key = (
                router,
                index_map.name_of(sample.output_ifindex),
            )
            self._interface_rates.add(interface_key, estimated_bytes, now)
            prefix = self._resolver(
                sample.record.family, sample.record.dst_address
            )
            if prefix is None:
                self.unroutable_bytes += estimated_bytes
                continue
            self._prefix_rates.add(prefix, estimated_bytes, now)
            self._prefix_interface_rates.add(
                (prefix, interface_key), estimated_bytes, now
            )

    def feed_many(self, datagrams, now: float) -> None:
        for data in datagrams:
            self.feed(data, now)

    # -- queries -------------------------------------------------------------------

    def prefix_rate(self, prefix: Prefix, now: float) -> Rate:
        return self._prefix_rates.rate(prefix, now)

    def interface_rate(
        self, router: str, interface: str, now: float
    ) -> Rate:
        return self._interface_rates.rate((router, interface), now)

    def prefix_rates(self, now: float) -> Dict[Prefix, Rate]:
        """Every prefix with measured traffic and its current rate."""
        return self._prefix_rates.rates(now)

    def interface_rates(self, now: float) -> Dict[InterfaceKey, Rate]:
        return self._interface_rates.rates(now)

    def prefix_interface_rates(
        self, now: float
    ) -> Dict[Tuple[Prefix, InterfaceKey], Rate]:
        return self._prefix_interface_rates.rates(now)
