"""sFlow collector: samples in, per-prefix and per-interface rates out.

Scaling follows the sFlow standard: a sample taken at 1-in-N stands for N
packets, so its frame length contributes ``frame_length * N`` bytes to the
estimate.

Destination addresses are aggregated to *routed prefixes* via a resolver
callback — in the full pipeline that is a longest-prefix match against the
BMP collector's RIB, the same join production Edge Fabric performs between
its Scuba traffic tables and its route store.  Addresses that resolve to
no routed prefix are counted separately (``unroutable_bytes``) so tests
can assert nothing silently disappears.
"""

from __future__ import annotations

import time as _time
from typing import Callable, Dict, Iterable, NamedTuple, Optional, Set, Tuple

from ..netbase.addr import Family, Prefix
from ..netbase.errors import DecodeError, TrafficError
from ..netbase.units import Rate
from ..obs.telemetry import Telemetry
from .agent import InterfaceIndexMap
from .datagram import iter_sample_fields
from .estimator import ColumnarRateEstimator

__all__ = ["SflowCollector", "FeedStats"]


class FeedStats(NamedTuple):
    """What one :meth:`SflowCollector.feed_many` call consumed/dropped."""

    datagrams: int
    samples: int
    decode_errors: int
    unknown_agents: int

#: Resolves a destination address to the routed prefix covering it.
PrefixResolver = Callable[[Family, int], Optional[Prefix]]

#: Key identifying an egress interface PoP-wide.
InterfaceKey = Tuple[str, str]  # (router, interface name)


class SflowCollector:
    """Aggregates sampled traffic into rate estimates."""

    def __init__(
        self,
        resolver: PrefixResolver,
        window_seconds: float = 60.0,
        telemetry: Optional[Telemetry] = None,
        change_log_limit: Optional[int] = None,
    ) -> None:
        """*change_log_limit* bounds each estimator's change log (the
        structure behind :meth:`changed_prefixes`).  The default suits
        tens-of-thousands-of-prefixes tables; full-table deployments
        must size it past one whole table refresh, or the first bulk
        seed overflows the log and parks the incremental snapshot path
        on full rebuilds for a window's worth of cycles."""
        self._resolver = resolver
        self.telemetry = telemetry or Telemetry(name="sflow")
        registry = self.telemetry.registry
        self._tracer = self.telemetry.tracer
        self._m_datagrams = registry.counter(
            "sflow_datagrams_total", "sFlow datagrams consumed"
        )
        self._m_samples = registry.counter(
            "sflow_samples_total", "sFlow flow samples consumed"
        )
        self._m_unroutable = registry.counter(
            "sflow_unroutable_bytes_total",
            "Estimated bytes whose destination matched no routed prefix",
        )
        self._m_decode_errors = registry.counter(
            "sflow_decode_errors_total",
            "Undecodable datagrams dropped (lenient ingestion)",
        )
        self._m_unknown_agents = registry.counter(
            "sflow_unknown_agent_total",
            "Datagrams from unregistered agents dropped (lenient ingestion)",
        )
        self._interfaces_by_router: Dict[str, InterfaceIndexMap] = {}
        self._router_by_agent: Dict[int, str] = {}
        # Columnar estimators: bit-identical to RateEstimator (the
        # parity suite enforces it) with vectorized snapshots, which is
        # what makes full-table rates() affordable every cycle.
        estimator_kwargs: Dict[str, object] = {}
        if change_log_limit is not None:
            estimator_kwargs["change_log_limit"] = change_log_limit
        self._prefix_rates: ColumnarRateEstimator[Prefix] = (
            ColumnarRateEstimator(window_seconds, **estimator_kwargs)
        )
        self._interface_rates: ColumnarRateEstimator[InterfaceKey] = (
            ColumnarRateEstimator(window_seconds, **estimator_kwargs)
        )
        self._prefix_interface_rates: ColumnarRateEstimator[
            Tuple[Prefix, InterfaceKey]
        ] = ColumnarRateEstimator(window_seconds, **estimator_kwargs)
        self.unroutable_bytes = 0.0
        self.datagrams = 0
        self.samples = 0

    def register_router(
        self,
        router: str,
        agent_address: int,
        interfaces: InterfaceIndexMap,
    ) -> None:
        """Teach the collector which agent is which router."""
        self._router_by_agent[agent_address] = router
        self._interfaces_by_router[router] = interfaces

    # -- ingestion ------------------------------------------------------------

    def feed(self, data: bytes, now: float) -> None:
        """Consume one encoded datagram."""
        self.feed_many((data,), now)

    def feed_many(
        self,
        datagrams: Iterable[bytes],
        now: float,
        lenient: bool = False,
    ) -> FeedStats:
        """Consume a batch of datagrams in one aggregation pass.

        All samples of a flow share a destination and interface, so the
        batch first sums estimated bytes per (router, ifIndex, dst) key,
        then resolves each unique destination once and performs a single
        estimator add per aggregate — identical rates to sample-by-sample
        feeding (same bytes, same timestamps) at a fraction of the cost.

        With ``lenient=True`` — the socket frontends' mode, where the
        bytes come from the network rather than the in-process agents —
        undecodable datagrams and datagrams from unregistered agents are
        counted and dropped whole (no partial aggregation) instead of
        raising, and the counts come back in the :class:`FeedStats`.
        The strict default preserves exact in-process semantics:
        :class:`DecodeError` and :class:`TrafficError` propagate.
        """
        span_started = _time.perf_counter()
        datagram_count = sample_count = 0
        decode_errors = unknown_agents = 0
        unroutable_before = self.unroutable_bytes
        # (router, output ifIndex, AFI, dst address) -> estimated bytes
        flow_bytes: Dict[Tuple[str, int, int, int], float] = {}
        for data in datagrams:
            try:
                agent_address, samples = iter_sample_fields(data)
            except DecodeError:
                if not lenient:
                    raise
                decode_errors += 1
                continue
            router = self._router_by_agent.get(agent_address)
            if router is None:
                if not lenient:
                    raise TrafficError(
                        f"datagram from unregistered agent "
                        f"{agent_address:#x}"
                    )
                unknown_agents += 1
                continue
            if lenient:
                # Force the whole datagram to decode before any of it
                # aggregates, so a corrupt tail drops the datagram
                # cleanly rather than leaving partial contributions.
                try:
                    samples = list(samples)
                except DecodeError:
                    decode_errors += 1
                    continue
            self.datagrams += 1
            datagram_count += 1
            for rate, out_if, afi, dst, frame_length in samples:
                self.samples += 1
                sample_count += 1
                key = (router, out_if, afi, dst)
                flow_bytes[key] = (
                    flow_bytes.get(key, 0.0) + float(frame_length * rate)
                )

        interface_bytes: Dict[InterfaceKey, float] = {}
        prefix_bytes: Dict[Prefix, float] = {}
        pair_bytes: Dict[Tuple[Prefix, InterfaceKey], float] = {}
        for (router, out_if, afi, dst), estimated in flow_bytes.items():
            try:
                interface_name = self._interfaces_by_router[router].name_of(
                    out_if
                )
            except TrafficError:
                # Structurally valid sample pointing at an ifIndex the
                # router never registered: wire garbage, count and drop.
                if not lenient:
                    raise
                decode_errors += 1
                continue
            interface_key = (router, interface_name)
            interface_bytes[interface_key] = (
                interface_bytes.get(interface_key, 0.0) + estimated
            )
            prefix = self._resolver(Family(afi), dst)
            if prefix is None:
                self.unroutable_bytes += estimated
                continue
            prefix_bytes[prefix] = prefix_bytes.get(prefix, 0.0) + estimated
            pair = (prefix, interface_key)
            pair_bytes[pair] = pair_bytes.get(pair, 0.0) + estimated

        for interface_key, estimated in interface_bytes.items():
            self._interface_rates.add(interface_key, estimated, now)
        for prefix, estimated in prefix_bytes.items():
            self._prefix_rates.add(prefix, estimated, now)
        for pair, estimated in pair_bytes.items():
            self._prefix_interface_rates.add(pair, estimated, now)

        if datagram_count:
            self._m_datagrams.inc(datagram_count)
            self._m_samples.inc(sample_count)
            unroutable_delta = (
                self.unroutable_bytes - unroutable_before
            )
            if unroutable_delta:
                self._m_unroutable.inc(unroutable_delta)
            # Empty batches (a router with no flows this tick) skip the
            # span so the ring buffer holds signal, not padding.
            self._tracer.record(
                "sflow.collect",
                span_started,
                _time.perf_counter() - span_started,
                {"datagrams": datagram_count, "samples": sample_count},
            )
        if decode_errors:
            self._m_decode_errors.inc(decode_errors)
        if unknown_agents:
            self._m_unknown_agents.inc(unknown_agents)
        return FeedStats(
            datagrams=datagram_count,
            samples=sample_count,
            decode_errors=decode_errors,
            unknown_agents=unknown_agents,
        )

    def add_estimate(
        self,
        prefix: Prefix,
        interface_key: InterfaceKey,
        byte_count: float,
        now: float,
    ) -> None:
        """Feed one pre-aggregated byte estimate, bypassing the codec.

        Synthetic-scale harnesses use this to drive the same three
        estimators ``feed_many`` drives — identical rate arithmetic —
        without paying wire encode/decode for tens of thousands of
        prefixes per tick.
        """
        self._interface_rates.add(interface_key, byte_count, now)
        self._prefix_rates.add(prefix, byte_count, now)
        self._prefix_interface_rates.add(
            (prefix, interface_key), byte_count, now
        )
        self.samples += 1

    # -- queries -------------------------------------------------------------------

    def prefix_rate(self, prefix: Prefix, now: float) -> Rate:
        return self._prefix_rates.rate(prefix, now)

    def interface_rate(
        self, router: str, interface: str, now: float
    ) -> Rate:
        return self._interface_rates.rate((router, interface), now)

    def prefix_rates(self, now: float) -> Dict[Prefix, Rate]:
        """Every prefix with measured traffic and its current rate."""
        return self._prefix_rates.rates(now)

    def changed_prefixes(
        self, since: float, now: float
    ) -> Optional[Set[Prefix]]:
        """Prefixes whose measured rate may differ between two instants.

        Delegates to the per-prefix estimator's add-log (see
        :meth:`RateEstimator.changed_keys`); ``None`` means the delta
        can't be derived and the caller must take a full snapshot.
        """
        return self._prefix_rates.changed_keys(since, now)

    def interface_rates(self, now: float) -> Dict[InterfaceKey, Rate]:
        return self._interface_rates.rates(now)

    def prefix_interface_rates(
        self, now: float
    ) -> Dict[Tuple[Prefix, InterfaceKey], Rate]:
        return self._prefix_interface_rates.rates(now)

    def prefix_window_stats(self, prefix: Prefix, now: float):
        """Window diagnostics for one prefix (safe on empty windows)."""
        return self._prefix_rates.window_stats(prefix, now)

    # -- health -------------------------------------------------------------------

    def age(self, now: float) -> float:
        """Seconds since any traffic measurement arrived.

        ``inf`` before the first sample — a collector that has never
        heard traffic is maximally stale, the same convention as
        :meth:`repro.bmp.collector.BmpCollector.age`.
        """
        return self._prefix_rates.age(now)
