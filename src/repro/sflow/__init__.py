"""sFlow substrate: packet sampling, collection, and rate estimation."""

from .agent import InterfaceIndexMap, ObservedFlow, SflowAgent
from .collector import SflowCollector
from .datagram import FlowSample, PacketRecord, SflowDatagram, SFLOW_VERSION
from .estimator import ColumnarRateEstimator, RateEstimator

__all__ = [
    "InterfaceIndexMap",
    "ObservedFlow",
    "SflowAgent",
    "SflowCollector",
    "FlowSample",
    "PacketRecord",
    "SflowDatagram",
    "SFLOW_VERSION",
    "RateEstimator",
    "ColumnarRateEstimator",
]
