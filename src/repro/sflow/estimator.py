"""Windowed traffic-rate estimation from scaled samples.

The collector turns samples into byte estimates; this module turns byte
estimates into *rates* over a sliding window (the paper's controller uses
an average over roughly the last minute of traffic, long enough to smooth
sampling noise, short enough to track demand shifts).

Every derived statistic is defensive about empty or single-sample
windows, in the same spirit as :func:`repro.analysis.perf.percentile`: a
fault that starves the collector for an interval (datagram loss, an
agent flap) must read as "rate 0, no samples", never as a
``ZeroDivisionError`` inside the controller's input path.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import (
    Deque,
    Dict,
    Generic,
    Hashable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    TypeVar,
)

import numpy as np

from ..netbase.intern import Interner
from ..netbase.units import Rate

__all__ = ["RateEstimator", "ColumnarRateEstimator", "WindowStats"]

K = TypeVar("K", bound=Hashable)

#: Sentinel for "no changed_keys() call has happened yet".
_NEVER = float("-inf")

#: Cap on the change log.  Without a consumer (nobody calls
#: :meth:`RateEstimator.changed_keys`) the log would grow with every
#: add; overflowing clears it and parks ``changed_keys`` on "unknown"
#: until the dropped history has aged out of every possible window.
DEFAULT_CHANGE_LOG_LIMIT = 262_144


@dataclass(frozen=True)
class WindowStats:
    """Diagnostics for one key's current estimation window.

    All fields degrade to zero rather than raising: an empty window has
    no samples, no bytes, zero rate, zero span and zero gap; a
    single-sample window has a defined rate but no gap to average.
    """

    samples: int
    total_bytes: float
    window_rate: Rate
    #: Seconds between the oldest and newest in-window sample.
    observed_span: float
    #: Mean seconds between consecutive samples (0.0 below 2 samples).
    mean_sample_gap: float

    @property
    def empty(self) -> bool:
        return self.samples == 0


class RateEstimator(Generic[K]):
    """Sliding-window byte-rate estimator keyed by an arbitrary key.

    ``add(key, byte_count, now)`` records an estimate; ``rate(key, now)``
    returns bytes-in-window / window as a :class:`Rate` (bits/second).
    """

    def __init__(
        self,
        window_seconds: float = 60.0,
        change_log_limit: int = DEFAULT_CHANGE_LOG_LIMIT,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError("window must be positive")
        self.window_seconds = window_seconds
        self._log_limit = change_log_limit
        self._events: Dict[K, Deque[Tuple[float, float]]] = defaultdict(deque)
        self._totals: Dict[K, float] = defaultdict(float)
        #: When the most recent sample (for any key) was recorded.
        self.last_add_at: Optional[float] = None
        # Change-detection state: every add appends (ts, key) to a
        # global log, so "which keys' rates may differ between two
        # instants" is answerable without touching unchanged keys — a
        # key changes either by gaining a sample (log tail) or by a
        # sample sliding out of the window (log head).  The log is only
        # sound while adds arrive in non-decreasing time order; an
        # out-of-order add flips ``_log_ordered`` and changed_keys()
        # reports "unknown" until clear().
        self._add_log: Deque[Tuple[float, K]] = deque()
        self._changed_watermark: float = _NEVER
        self._log_ordered: bool = True
        self._log_dropped_until: float = _NEVER

    def add(self, key: K, byte_count: float, now: float) -> None:
        if byte_count < 0:
            raise ValueError("byte count cannot be negative")
        self._expire(key, now)
        self._events[key].append((now, byte_count))
        self._totals[key] += byte_count
        if self.last_add_at is None or now >= self.last_add_at:
            self.last_add_at = now
        else:
            self._log_ordered = False
        log = self._add_log
        log.append((now, key))
        # Trim what no reader can need: the single consumer only ever
        # asks about instants at or after its watermark, so entries
        # expired out of every window ending there are dead weight.
        floor = self._changed_watermark - self.window_seconds
        while log and log[0][0] <= floor:
            log.popleft()
        if len(log) > self._log_limit:
            # No consumer is draining the log; stop carrying history
            # and park changed_keys() on "unknown" until the dropped
            # span has aged out of every possible window.
            self._log_dropped_until = log[-1][0]
            log.clear()

    def _expire(self, key: K, now: float) -> None:
        horizon = now - self.window_seconds
        events = self._events[key]
        total = self._totals[key]
        while events and events[0][0] <= horizon:
            _ts, stale = events.popleft()
            total -= stale
        self._totals[key] = max(0.0, total)
        if not events:
            del self._events[key]
            del self._totals[key]

    def rate(self, key: K, now: float) -> Rate:
        """Estimated rate for *key* over the window ending at *now*."""
        if key in self._events:
            self._expire(key, now)
        total_bytes = self._totals.get(key, 0.0)
        return Rate(total_bytes * 8.0 / self.window_seconds)

    def window_stats(self, key: K, now: float) -> WindowStats:
        """Diagnostics for *key*'s window; safe on empty windows."""
        if key in self._events:
            self._expire(key, now)
        events = self._events.get(key)
        if not events:
            return WindowStats(
                samples=0,
                total_bytes=0.0,
                window_rate=Rate(0),
                observed_span=0.0,
                mean_sample_gap=0.0,
            )
        count = len(events)
        span = events[-1][0] - events[0][0]
        # One sample spans no time; a mean gap over zero intervals is
        # undefined, so both degrade to 0.0 rather than dividing.
        gap = span / (count - 1) if count > 1 else 0.0
        total = self._totals.get(key, 0.0)
        return WindowStats(
            samples=count,
            total_bytes=total,
            window_rate=Rate(total * 8.0 / self.window_seconds),
            observed_span=span,
            mean_sample_gap=gap,
        )

    def age(self, now: float) -> float:
        """Seconds since *any* sample arrived (inf before the first)."""
        if self.last_add_at is None:
            return float("inf")
        return max(0.0, now - self.last_add_at)

    def keys(self) -> Iterator[K]:
        """Live iterator over keys with in-window samples (no copy).

        The view is backed by the estimator's own dict: don't call
        ``add``/``rate``/``rates`` while consuming it.  Callers that need
        a stable snapshot should materialize it themselves.
        """
        return iter(self._events.keys())

    def __len__(self) -> int:
        """Number of keys currently holding in-window samples."""
        return len(self._events)

    def __contains__(self, key: K) -> bool:
        return key in self._events

    def rates(self, now: float) -> Dict[K, Rate]:
        """Snapshot of every key's current rate (zero-rate keys dropped)."""
        # Expiry is inlined (rather than per-key rate() calls) so the
        # snapshot never copies the key list: emptied keys are collected
        # and deleted after the pass, because deleting during iteration
        # would invalidate the dict view.  The arithmetic mirrors
        # _expire() exactly — same pops, same single clamp — so the
        # floats are bit-identical to the per-key path.
        horizon = now - self.window_seconds
        window = self.window_seconds
        out: Dict[K, Rate] = {}
        dead = []
        for key, events in self._events.items():
            total = self._totals[key]
            if events[0][0] <= horizon:
                while events and events[0][0] <= horizon:
                    _ts, stale = events.popleft()
                    total -= stale
                total = max(0.0, total)
                if not events:
                    dead.append(key)
                    continue
                self._totals[key] = total
            value = Rate(total * 8.0 / window)
            if not value.is_zero():
                out[key] = value
        for key in dead:
            del self._events[key]
            del self._totals[key]
        return out

    def changed_keys(self, since: float, now: float) -> Optional[Set[K]]:
        """Keys whose rate at *now* may differ from their rate at *since*.

        A key is reported when it gained a sample in ``(since, now]`` or
        lost one to window expiry — a sample with timestamp in
        ``(since - window, now - window]`` (matching :meth:`_expire`'s
        ``<= horizon`` boundary exactly).  The set is conservative: a
        reported key's rate may happen to be unchanged, but an
        unreported key's rate is guaranteed identical.

        Returns ``None`` when the answer can't be computed without a
        full pass: the log is consumed destructively at its head, so
        only a single reader advancing monotonically is supported
        (*since* must be ≥ the previous call's *now*), and adds must
        have arrived in time order.
        """
        if now < since:
            raise ValueError("change window runs backwards")
        if (
            not self._log_ordered
            or since < self._changed_watermark
            or since - self.window_seconds <= self._log_dropped_until
        ):
            return None
        changed: Set[K] = set()
        log = self._add_log
        horizon = now - self.window_seconds
        since_horizon = since - self.window_seconds
        # Head: samples expired out of every possible window ending at
        # or before *now*; those still in the window at *since* changed
        # their key's rate by leaving.
        while log and log[0][0] <= horizon:
            ts, key = log.popleft()
            if ts > since_horizon:
                changed.add(key)
        # Tail: samples added after *since*.
        for ts, key in reversed(log):
            if ts <= since:
                break
            changed.add(key)
        self._changed_watermark = now
        return changed

    def clear(self) -> None:
        self._events.clear()
        self._totals.clear()
        self.last_add_at = None
        self._add_log.clear()
        self._changed_watermark = _NEVER
        self._log_ordered = True
        self._log_dropped_until = _NEVER


class ColumnarRateEstimator(Generic[K]):
    """Array-backed :class:`RateEstimator`, bit-for-bit compatible.

    Keys are interned into dense slots (:class:`~repro.netbase.intern.Interner`)
    and per-key running totals live in a numpy float64 column instead of
    a dict of boxed floats; a parallel ``_oldest`` column holds each
    slot's oldest in-window sample timestamp (``inf`` for slots with no
    in-window samples), so the bulk :meth:`rates` snapshot finds the
    slots needing expiry with one vectorized comparison and computes all
    rates with one vectorized multiply-divide, instead of touching every
    key in Python.  At full-table scale (~700k prefixes) this turns the
    steady-state snapshot from the dominant per-cycle cost into noise.

    Parity is a hard contract, enforced property-style by the test
    suite: every observable — rates, window stats, ``changed_keys``
    (including the change-log overflow and out-of-order degradation
    paths), lengths, membership — is bit-identical to the dict
    implementation over any add/expire/query sequence, because the
    per-slot arithmetic performs the exact same sequence of IEEE double
    operations (element-wise numpy float64 math is the same operation
    as the Python float math it replaces).  Numpy scalars never escape:
    values are converted to Python floats at every API boundary so
    reprs, JSON encodings and hash behaviour stay identical.

    The one intentional difference is iteration *order*: a key that
    empties and later gains samples keeps its slot (the dict
    implementation re-inserts it at the end), so :meth:`keys` and
    :meth:`rates` enumerate in first-ever-seen order, not
    most-recently-revived order.  No consumer depends on either order;
    parity tests compare by dict equality.
    """

    #: Initial slot capacity; columns double on demand.
    _INITIAL_CAPACITY = 1024

    def __init__(
        self,
        window_seconds: float = 60.0,
        change_log_limit: int = DEFAULT_CHANGE_LOG_LIMIT,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError("window must be positive")
        self.window_seconds = window_seconds
        self._log_limit = change_log_limit
        self._slots: Interner[K] = Interner()
        # The columns below are indexed by the interner's ids, so the
        # estimator registers as a consumer: wiping the id space goes
        # through reset(), which drops the columns first (a bare
        # Interner.clear() would raise rather than let stale rows pair
        # with recycled ids).
        self._slots.register_consumer(self._invalidate_columns)
        self._totals = np.zeros(self._INITIAL_CAPACITY, dtype=np.float64)
        self._oldest = np.full(
            self._INITIAL_CAPACITY, np.inf, dtype=np.float64
        )
        #: Per-slot event deques, parallel to the interner's id space.
        self._events: List[Deque[Tuple[float, float]]] = []
        #: Count of slots currently holding in-window samples.
        self._live = 0
        self.last_add_at: Optional[float] = None
        # Change-detection state: identical machinery to RateEstimator
        # (see its field comments); the log stores keys, not slots, so
        # changed_keys() returns the same sets.
        self._add_log: Deque[Tuple[float, K]] = deque()
        self._changed_watermark: float = _NEVER
        self._log_ordered: bool = True
        self._log_dropped_until: float = _NEVER

    def _slot_for(self, key: K) -> int:
        slot = self._slots.intern(key)
        if slot == len(self._events):
            self._events.append(deque())
            if slot == len(self._totals):
                grown = len(self._totals) * 2
                totals = np.zeros(grown, dtype=np.float64)
                totals[:slot] = self._totals
                oldest = np.full(grown, np.inf, dtype=np.float64)
                oldest[:slot] = self._oldest
                self._totals = totals
                self._oldest = oldest
        return slot

    def add(self, key: K, byte_count: float, now: float) -> None:
        if byte_count < 0:
            raise ValueError("byte count cannot be negative")
        slot = self._slot_for(key)
        self._expire_slot(slot, now - self.window_seconds)
        events = self._events[slot]
        if not events:
            self._live += 1
        events.append((now, byte_count))
        self._oldest[slot] = events[0][0]
        self._totals[slot] += byte_count
        if self.last_add_at is None or now >= self.last_add_at:
            self.last_add_at = now
        else:
            self._log_ordered = False
        log = self._add_log
        log.append((now, key))
        floor = self._changed_watermark - self.window_seconds
        while log and log[0][0] <= floor:
            log.popleft()
        if len(log) > self._log_limit:
            self._log_dropped_until = log[-1][0]
            log.clear()

    def _expire_slot(self, slot: int, horizon: float) -> None:
        """Mirror of :meth:`RateEstimator._expire`: same pops, same
        single clamp, so totals stay bit-identical."""
        events = self._events[slot]
        if not events or events[0][0] > horizon:
            return
        total = self._totals[slot].item()
        while events and events[0][0] <= horizon:
            _ts, stale = events.popleft()
            total -= stale
        if events:
            self._totals[slot] = max(0.0, total)
            self._oldest[slot] = events[0][0]
        else:
            self._totals[slot] = 0.0
            self._oldest[slot] = np.inf
            self._live -= 1

    def rate(self, key: K, now: float) -> Rate:
        """Estimated rate for *key* over the window ending at *now*."""
        slot = self._slots.id_of(key)
        if slot is None or slot >= len(self._events):
            return Rate(0.0)
        self._expire_slot(slot, now - self.window_seconds)
        total = self._totals[slot].item()
        return Rate(total * 8.0 / self.window_seconds)

    def window_stats(self, key: K, now: float) -> WindowStats:
        """Diagnostics for *key*'s window; safe on empty windows."""
        slot = self._slots.id_of(key)
        if slot is not None and slot < len(self._events):
            self._expire_slot(slot, now - self.window_seconds)
            events = self._events[slot]
        else:
            events = None
        if not events:
            return WindowStats(
                samples=0,
                total_bytes=0.0,
                window_rate=Rate(0),
                observed_span=0.0,
                mean_sample_gap=0.0,
            )
        count = len(events)
        span = events[-1][0] - events[0][0]
        gap = span / (count - 1) if count > 1 else 0.0
        total = self._totals[slot].item()  # type: ignore[index]
        return WindowStats(
            samples=count,
            total_bytes=total,
            window_rate=Rate(total * 8.0 / self.window_seconds),
            observed_span=span,
            mean_sample_gap=gap,
        )

    def age(self, now: float) -> float:
        """Seconds since *any* sample arrived (inf before the first)."""
        if self.last_add_at is None:
            return float("inf")
        return max(0.0, now - self.last_add_at)

    def keys(self) -> Iterator[K]:
        """Live iterator over keys with in-window samples (no copy)."""
        table = self._slots.keys
        return (
            table[slot]
            for slot, events in enumerate(self._events)
            if events
        )

    def __len__(self) -> int:
        return self._live

    def __contains__(self, key: K) -> bool:
        slot = self._slots.id_of(key)
        return (
            slot is not None
            and slot < len(self._events)
            and bool(self._events[slot])
        )

    def rates(self, now: float) -> Dict[K, Rate]:
        """Snapshot of every key's current rate (zero-rate keys dropped).

        The vectorized twin of :meth:`RateEstimator.rates`: one
        comparison over the ``_oldest`` column finds the slots with
        anything to expire (Python-loop expiry on just those slots keeps
        the subtraction order, hence the bits, identical), then one
        ``(totals * 8.0) / window`` computes every rate at once.
        """
        window = self.window_seconds
        horizon = now - window
        count = len(self._events)
        out: Dict[K, Rate] = {}
        if count == 0:
            return out
        oldest = self._oldest[:count]
        for slot in np.nonzero(oldest <= horizon)[0].tolist():
            events = self._events[slot]
            total = self._totals[slot].item()
            while events and events[0][0] <= horizon:
                _ts, stale = events.popleft()
                total -= stale
            total = max(0.0, total)
            if events:
                self._totals[slot] = total
                self._oldest[slot] = events[0][0]
            else:
                self._totals[slot] = 0.0
                self._oldest[slot] = np.inf
                self._live -= 1
        values = (self._totals[:count] * 8.0) / window
        # `oldest` is a view, so the expiry pass above already flipped
        # emptied slots to inf; the mask below skips them.
        live = np.nonzero(np.isfinite(oldest) & (values != 0.0))[0]
        table = self._slots.keys
        unboxed = values.tolist()
        for slot in live.tolist():
            out[table[slot]] = Rate(unboxed[slot])
        return out

    def changed_keys(self, since: float, now: float) -> Optional[Set[K]]:
        """Identical contract and arithmetic to
        :meth:`RateEstimator.changed_keys`."""
        if now < since:
            raise ValueError("change window runs backwards")
        if (
            not self._log_ordered
            or since < self._changed_watermark
            or since - self.window_seconds <= self._log_dropped_until
        ):
            return None
        changed: Set[K] = set()
        log = self._add_log
        horizon = now - self.window_seconds
        since_horizon = since - self.window_seconds
        while log and log[0][0] <= horizon:
            ts, key = log.popleft()
            if ts > since_horizon:
                changed.add(key)
        for ts, key in reversed(log):
            if ts <= since:
                break
            changed.add(key)
        self._changed_watermark = now
        return changed

    def _invalidate_columns(self) -> None:
        """Drop every id-indexed structure (interner consumer hook)."""
        self._totals = np.zeros(self._INITIAL_CAPACITY, dtype=np.float64)
        self._oldest = np.full(
            self._INITIAL_CAPACITY, np.inf, dtype=np.float64
        )
        self._events.clear()
        self._live = 0

    def clear(self) -> None:
        # reset() invalidates this estimator's columns via the consumer
        # hook before wiping the id space, keeping ids and rows in step.
        self._slots.reset()
        self.last_add_at = None
        self._add_log.clear()
        self._changed_watermark = _NEVER
        self._log_ordered = True
        self._log_dropped_until = _NEVER
