"""Windowed traffic-rate estimation from scaled samples.

The collector turns samples into byte estimates; this module turns byte
estimates into *rates* over a sliding window (the paper's controller uses
an average over roughly the last minute of traffic, long enough to smooth
sampling noise, short enough to track demand shifts).

Every derived statistic is defensive about empty or single-sample
windows, in the same spirit as :func:`repro.analysis.perf.percentile`: a
fault that starves the collector for an interval (datagram loss, an
agent flap) must read as "rate 0, no samples", never as a
``ZeroDivisionError`` inside the controller's input path.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import (
    Deque,
    Dict,
    Generic,
    Hashable,
    Iterator,
    Optional,
    Tuple,
    TypeVar,
)

from ..netbase.units import Rate

__all__ = ["RateEstimator", "WindowStats"]

K = TypeVar("K", bound=Hashable)


@dataclass(frozen=True)
class WindowStats:
    """Diagnostics for one key's current estimation window.

    All fields degrade to zero rather than raising: an empty window has
    no samples, no bytes, zero rate, zero span and zero gap; a
    single-sample window has a defined rate but no gap to average.
    """

    samples: int
    total_bytes: float
    window_rate: Rate
    #: Seconds between the oldest and newest in-window sample.
    observed_span: float
    #: Mean seconds between consecutive samples (0.0 below 2 samples).
    mean_sample_gap: float

    @property
    def empty(self) -> bool:
        return self.samples == 0


class RateEstimator(Generic[K]):
    """Sliding-window byte-rate estimator keyed by an arbitrary key.

    ``add(key, byte_count, now)`` records an estimate; ``rate(key, now)``
    returns bytes-in-window / window as a :class:`Rate` (bits/second).
    """

    def __init__(self, window_seconds: float = 60.0) -> None:
        if window_seconds <= 0:
            raise ValueError("window must be positive")
        self.window_seconds = window_seconds
        self._events: Dict[K, Deque[Tuple[float, float]]] = defaultdict(deque)
        self._totals: Dict[K, float] = defaultdict(float)
        #: When the most recent sample (for any key) was recorded.
        self.last_add_at: Optional[float] = None

    def add(self, key: K, byte_count: float, now: float) -> None:
        if byte_count < 0:
            raise ValueError("byte count cannot be negative")
        self._expire(key, now)
        self._events[key].append((now, byte_count))
        self._totals[key] += byte_count
        if self.last_add_at is None or now > self.last_add_at:
            self.last_add_at = now

    def _expire(self, key: K, now: float) -> None:
        horizon = now - self.window_seconds
        events = self._events[key]
        total = self._totals[key]
        while events and events[0][0] <= horizon:
            _ts, stale = events.popleft()
            total -= stale
        self._totals[key] = max(0.0, total)
        if not events:
            del self._events[key]
            del self._totals[key]

    def rate(self, key: K, now: float) -> Rate:
        """Estimated rate for *key* over the window ending at *now*."""
        if key in self._events:
            self._expire(key, now)
        total_bytes = self._totals.get(key, 0.0)
        return Rate(total_bytes * 8.0 / self.window_seconds)

    def window_stats(self, key: K, now: float) -> WindowStats:
        """Diagnostics for *key*'s window; safe on empty windows."""
        if key in self._events:
            self._expire(key, now)
        events = self._events.get(key)
        if not events:
            return WindowStats(
                samples=0,
                total_bytes=0.0,
                window_rate=Rate(0),
                observed_span=0.0,
                mean_sample_gap=0.0,
            )
        count = len(events)
        span = events[-1][0] - events[0][0]
        # One sample spans no time; a mean gap over zero intervals is
        # undefined, so both degrade to 0.0 rather than dividing.
        gap = span / (count - 1) if count > 1 else 0.0
        total = self._totals.get(key, 0.0)
        return WindowStats(
            samples=count,
            total_bytes=total,
            window_rate=Rate(total * 8.0 / self.window_seconds),
            observed_span=span,
            mean_sample_gap=gap,
        )

    def age(self, now: float) -> float:
        """Seconds since *any* sample arrived (inf before the first)."""
        if self.last_add_at is None:
            return float("inf")
        return max(0.0, now - self.last_add_at)

    def keys(self) -> Iterator[K]:
        return iter(list(self._events.keys()))

    def rates(self, now: float) -> Dict[K, Rate]:
        """Snapshot of every key's current rate (zero-rate keys dropped)."""
        out: Dict[K, Rate] = {}
        for key in list(self._events.keys()):
            value = self.rate(key, now)
            if not value.is_zero():
                out[key] = value
        return out

    def clear(self) -> None:
        self._events.clear()
        self._totals.clear()
        self.last_add_at = None
