"""Windowed traffic-rate estimation from scaled samples.

The collector turns samples into byte estimates; this module turns byte
estimates into *rates* over a sliding window (the paper's controller uses
an average over roughly the last minute of traffic, long enough to smooth
sampling noise, short enough to track demand shifts).
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque, Dict, Generic, Hashable, Iterator, Tuple, TypeVar

from ..netbase.units import Rate

__all__ = ["RateEstimator"]

K = TypeVar("K", bound=Hashable)


class RateEstimator(Generic[K]):
    """Sliding-window byte-rate estimator keyed by an arbitrary key.

    ``add(key, byte_count, now)`` records an estimate; ``rate(key, now)``
    returns bytes-in-window / window as a :class:`Rate` (bits/second).
    """

    def __init__(self, window_seconds: float = 60.0) -> None:
        if window_seconds <= 0:
            raise ValueError("window must be positive")
        self.window_seconds = window_seconds
        self._events: Dict[K, Deque[Tuple[float, float]]] = defaultdict(deque)
        self._totals: Dict[K, float] = defaultdict(float)

    def add(self, key: K, byte_count: float, now: float) -> None:
        if byte_count < 0:
            raise ValueError("byte count cannot be negative")
        self._expire(key, now)
        self._events[key].append((now, byte_count))
        self._totals[key] += byte_count

    def _expire(self, key: K, now: float) -> None:
        horizon = now - self.window_seconds
        events = self._events[key]
        total = self._totals[key]
        while events and events[0][0] <= horizon:
            _ts, stale = events.popleft()
            total -= stale
        self._totals[key] = max(0.0, total)
        if not events:
            del self._events[key]
            del self._totals[key]

    def rate(self, key: K, now: float) -> Rate:
        """Estimated rate for *key* over the window ending at *now*."""
        if key in self._events:
            self._expire(key, now)
        total_bytes = self._totals.get(key, 0.0)
        return Rate(total_bytes * 8.0 / self.window_seconds)

    def keys(self) -> Iterator[K]:
        return iter(list(self._events.keys()))

    def rates(self, now: float) -> Dict[K, Rate]:
        """Snapshot of every key's current rate (zero-rate keys dropped)."""
        out: Dict[K, Rate] = {}
        for key in list(self._events.keys()):
            value = self.rate(key, now)
            if not value.is_zero():
                out[key] = value
        return out

    def clear(self) -> None:
        self._events.clear()
        self._totals.clear()
