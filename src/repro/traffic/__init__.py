"""Synthetic traffic: skewed, diurnal, volatile egress demand."""

from .demand import DemandConfig, DemandModel, FlashEvent
from .flows import FlowSynthesizer

__all__ = ["DemandConfig", "DemandModel", "FlashEvent", "FlowSynthesizer"]
