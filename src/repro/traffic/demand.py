"""Synthetic egress demand: who wants how much traffic, when.

The paper's controller exists because demand is *skewed* (a few prefixes
carry most traffic), *diurnal* (evening peaks roughly double the trough),
and *volatile* at short timescales (per-prefix rates move minute to
minute).  The demand model reproduces those three properties:

- per-prefix base weights are Zipf-distributed, with prefixes inside
  private peers' customer cones boosted (ASes peer privately because they
  exchange lots of traffic),
- a sinusoidal diurnal cycle scales the total,
- a per-prefix log-AR(1) process adds short-timescale volatility, and
  optional flash events multiply selected prefixes for a bounded window.

Everything is deterministic given the seed.  The model is stepped with a
non-decreasing clock; querying time ``t`` advances the AR(1) state by the
elapsed ticks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..netbase.addr import Prefix
from ..netbase.errors import TrafficError
from ..netbase.units import Rate, gbps

__all__ = ["FlashEvent", "DemandConfig", "DemandModel"]

DAY_SECONDS = 86_400.0


@dataclass(frozen=True)
class FlashEvent:
    """A temporary demand surge on a set of prefixes."""

    prefixes: Tuple[Prefix, ...]
    start: float
    duration: float
    multiplier: float = 3.0

    def active(self, now: float) -> bool:
        return self.start <= now < self.start + self.duration


@dataclass(frozen=True)
class DemandConfig:
    seed: int = 0
    #: Total PoP egress at the diurnal peak (before volatility).
    peak_total: Rate = gbps(300)
    #: Zipf exponent for per-prefix weights.
    zipf_exponent: float = 1.1
    #: Weight multiplier for "popular" (peer-cone) prefixes.
    popular_boost: float = 4.0
    #: Trough demand as a fraction of peak.
    diurnal_floor: float = 0.4
    #: Time of day (seconds) of the diurnal peak.
    peak_time: float = 64_800.0  # 18:00
    #: Volatility: stationary std-dev of log rate, and per-tick memory.
    volatility_sigma: float = 0.2
    volatility_rho: float = 0.9
    #: Tick length for the AR(1) process.
    tick_seconds: float = 60.0
    #: Mean packet size used when converting rates to packets.
    mean_packet_bytes: int = 1000

    def __post_init__(self) -> None:
        if not 0 < self.diurnal_floor <= 1:
            raise TrafficError("diurnal_floor must be in (0, 1]")
        if not 0 <= self.volatility_rho < 1:
            raise TrafficError("volatility_rho must be in [0, 1)")
        if self.tick_seconds <= 0:
            raise TrafficError("tick_seconds must be positive")


class DemandModel:
    """Per-prefix egress demand over time."""

    def __init__(
        self,
        prefixes: Sequence[Prefix],
        config: DemandConfig = DemandConfig(),
        popular: Optional[Iterable[Prefix]] = None,
        flash_events: Sequence[FlashEvent] = (),
    ) -> None:
        if not prefixes:
            raise TrafficError("demand model needs at least one prefix")
        self.config = config
        self.prefixes: List[Prefix] = list(prefixes)
        self.flash_events = tuple(flash_events)
        self._index_of = {
            prefix: index for index, prefix in enumerate(self.prefixes)
        }
        rng = np.random.default_rng(config.seed)
        self._weights = self._build_weights(rng, popular)
        count = len(self.prefixes)
        # AR(1) log-volatility state, started at stationarity.
        self._rng = rng
        self._log_state = rng.normal(0.0, config.volatility_sigma, count)
        self._current_tick = 0
        self._innovation_sigma = config.volatility_sigma * np.sqrt(
            1.0 - config.volatility_rho**2
        )

    @classmethod
    def from_columns(
        cls,
        prefixes: Sequence[Prefix],
        config: DemandConfig,
        weights: np.ndarray,
        log_state: np.ndarray,
        rng_state: Optional[dict] = None,
        current_tick: int = 0,
        flash_events: Sequence[FlashEvent] = (),
    ) -> "DemandModel":
        """Rehydrate a model from previously built columns.

        This is the shared-substrate path: *weights* and *log_state*
        may be **read-only views** onto a
        :class:`~repro.netbase.substrate.FrozenTable` — weights are
        never written after construction, and :meth:`_advance_to`
        *rebinds* ``_log_state`` rather than writing in place, so the
        first advance naturally becomes this process's private overlay
        while the initial state stays on shared pages.

        *rng_state* is the donor model's ``bit_generator.state`` (so
        subsequent volatility draws continue its exact sequence); when
        omitted, the construction-time draws are replayed and discarded,
        which reproduces the same state for a freshly built donor.  The
        result is bit-identical to the donor at capture time.
        """
        if not prefixes:
            raise TrafficError("demand model needs at least one prefix")
        model = cls.__new__(cls)
        model.config = config
        model.prefixes = list(prefixes)
        model.flash_events = tuple(flash_events)
        model._index_of = {
            prefix: index for index, prefix in enumerate(model.prefixes)
        }
        count = len(model.prefixes)
        if len(weights) != count or len(log_state) != count:
            raise TrafficError(
                f"column length mismatch: {count} prefixes vs "
                f"{len(weights)} weights / {len(log_state)} log-states"
            )
        rng = np.random.default_rng(config.seed)
        if rng_state is not None:
            rng.bit_generator.state = rng_state
        else:
            rng.permutation(count)
            rng.normal(0.0, config.volatility_sigma, count)
        model._rng = rng
        model._weights = weights
        model._log_state = log_state
        model._current_tick = current_tick
        model._innovation_sigma = config.volatility_sigma * np.sqrt(
            1.0 - config.volatility_rho**2
        )
        return model

    def column_state(self) -> Tuple[np.ndarray, np.ndarray, dict, int]:
        """(weights, log_state, rng state, tick) for :meth:`from_columns`."""
        return (
            self._weights,
            self._log_state,
            self._rng.bit_generator.state,
            self._current_tick,
        )

    def _build_weights(
        self, rng: np.random.Generator, popular: Optional[Iterable[Prefix]]
    ) -> np.ndarray:
        count = len(self.prefixes)
        ranks = rng.permutation(count) + 1
        weights = ranks.astype(float) ** -self.config.zipf_exponent
        if popular is not None:
            for prefix in popular:
                index = self._index_of.get(prefix)
                if index is not None:
                    weights[index] *= self.config.popular_boost
        return weights / weights.sum()

    # -- time stepping ------------------------------------------------------

    def _advance_to(self, now: float) -> None:
        tick = int(now // self.config.tick_seconds)
        if tick < self._current_tick:
            raise TrafficError(
                "demand model clock must be non-decreasing "
                f"(was at tick {self._current_tick}, asked for {tick})"
            )
        rho = self.config.volatility_rho
        while self._current_tick < tick:
            noise = self._rng.normal(
                0.0, self._innovation_sigma, len(self.prefixes)
            )
            self._log_state = rho * self._log_state + noise
            self._current_tick += 1

    def diurnal_factor(self, now: float) -> float:
        """Fraction of peak demand at time-of-day *now*."""
        floor = self.config.diurnal_floor
        phase = 2.0 * np.pi * (now - self.config.peak_time) / DAY_SECONDS
        return floor + (1.0 - floor) * 0.5 * (1.0 + np.cos(phase))

    def _flash_multipliers(self, now: float) -> Optional[np.ndarray]:
        multipliers: Optional[np.ndarray] = None
        for event in self.flash_events:
            if not event.active(now):
                continue
            if multipliers is None:
                multipliers = np.ones(len(self.prefixes))
            for prefix in event.prefixes:
                index = self._index_of.get(prefix)
                if index is not None:
                    multipliers[index] *= event.multiplier
        return multipliers

    # -- queries -----------------------------------------------------------------

    def rates(self, now: float) -> Dict[Prefix, Rate]:
        """Per-prefix demand at time *now* (advances volatility state)."""
        return {
            prefix: Rate(value)
            for prefix, value in self.rates_bps(now).items()
        }

    def rates_bps(self, now: float) -> Dict[Prefix, float]:
        """Per-prefix demand in plain bits/second (the dataplane's hot
        path accumulates floats and converts to :class:`Rate` only at
        API boundaries)."""
        values = self.rate_array(now).tolist()
        return {
            prefix: values[index]
            for index, prefix in enumerate(self.prefixes)
            if values[index] > 0.0
        }

    def rate_array(self, now: float) -> np.ndarray:
        """Per-prefix demand in bits/second, aligned with ``self.prefixes``."""
        self._advance_to(now)
        total = (
            self.config.peak_total.bits_per_second
            * self.diurnal_factor(now)
        )
        volatility = np.exp(
            self._log_state - self.config.volatility_sigma**2 / 2.0
        )
        values = total * self._weights * volatility
        flash = self._flash_multipliers(now)
        if flash is not None:
            values = values * flash
        return values

    def total_rate(self, now: float) -> Rate:
        return Rate(float(self.rate_array(now).sum()))

    def weight_of(self, prefix: Prefix) -> float:
        index = self._index_of.get(prefix)
        if index is None:
            raise TrafficError(f"prefix {prefix} not in demand model")
        return float(self._weights[index])

    def top_prefixes(self, count: int) -> List[Prefix]:
        """The *count* heaviest prefixes by base weight."""
        order = np.argsort(-self._weights)[:count]
        return [self.prefixes[i] for i in order]
