"""Turn per-prefix demand into flow observations for the sampling plane.

The dataplane decides which interface each prefix's traffic uses; this
module materializes that decision as :class:`ObservedFlow` records — the
input the sFlow agents sample.  Destination addresses are drawn inside the
prefix (varying the host part tick to tick, as real traffic does) and the
source is one of the PoP's server addresses.
"""

from __future__ import annotations

from typing import Iterator, Tuple, Union

import numpy as np

from ..netbase.addr import Family, Prefix
from ..netbase.units import Rate
from ..sflow.agent import ObservedFlow

__all__ = ["FlowSynthesizer"]

_SERVER_SOURCE_V4 = 0x0A600001  # 10.96.0.1 — the PoP's server pool
_SERVER_SOURCE_V6 = (0x20010DB8 << 96) | 0x1


class FlowSynthesizer:
    """Materializes per-(prefix, interface) demand as sampled-plane flows."""

    def __init__(self, mean_packet_bytes: int = 1000, seed: int = 0) -> None:
        self.mean_packet_bytes = mean_packet_bytes
        self._rng = np.random.default_rng(seed)

    def flows(
        self,
        assignments: Iterator[Tuple[Prefix, Union[Rate, float], str]],
        interval_seconds: float,
        dscp: int = 0,
    ) -> Iterator[ObservedFlow]:
        """One flow observation per (prefix, egress interface) per tick.

        *assignments* yields (prefix, rate, egress interface name) — the
        interface is the one on the router whose agent will sample this
        flow, so the caller groups assignments per router.  The rate may
        be a :class:`Rate` or plain bits/second (the simulator's float
        hot path).
        """
        for prefix, rate, interface in assignments:
            bps = (
                rate.bits_per_second if isinstance(rate, Rate) else rate
            )
            total_bytes = bps * interval_seconds / 8.0
            if total_bytes <= 0:
                continue
            packets = total_bytes / self.mean_packet_bytes
            yield ObservedFlow(
                family=prefix.family,
                src_address=(
                    _SERVER_SOURCE_V4
                    if prefix.family is Family.IPV4
                    else _SERVER_SOURCE_V6
                ),
                dst_address=self._address_in(prefix),
                bytes_sent=total_bytes,
                packets=packets,
                egress_interface=interface,
                dscp=dscp,
            )

    def _address_in(self, prefix: Prefix) -> int:
        """A host address inside *prefix*, varied per call."""
        host_bits = prefix.family.max_length - prefix.length
        if host_bits == 0:
            return prefix.network
        span = min(host_bits, 16)
        offset = int(self._rng.integers(1, 1 << span))
        return prefix.network | offset
