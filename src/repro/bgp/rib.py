"""Routing information bases: per-peer Adj-RIB-In and the Loc-RIB.

The Loc-RIB here is deliberately richer than a router's: it keeps *every*
accepted route per prefix and can return them in decision-process order.
That is the view Edge Fabric needs — the paper's controller consumes the
Adj-RIB-In of every peering session (via BMP) precisely because the
routers' own Loc-RIBs hide the alternatives the allocator wants to detour
onto.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from itertools import islice
from typing import Deque, Dict, Iterator, List, Optional, Set, Tuple

from ..netbase.addr import Family, Prefix
from ..netbase.errors import RibError
from ..netbase.trie import PrefixMap
from .decision import DecisionConfig, DEFAULT_CONFIG, best_route, rank_routes
from .peering import PeerDescriptor
from .route import Route

__all__ = ["AdjRibIn", "RibChange", "LocRib"]

#: Mutations the delta journal retains.  The controller reads the journal
#: once per ~30 s cycle, so the cap only matters when a single cycle sees
#: more churn than this — at which point an incremental reader is no
#: cheaper than a full pass anyway and :meth:`LocRib.changed_since`
#: signals "resynchronize" by returning ``None``.
DEFAULT_JOURNAL_LIMIT = 262_144


class AdjRibIn:
    """Routes learned from a single peer, post-import-policy."""

    def __init__(self, peer: PeerDescriptor) -> None:
        self.peer = peer
        self._routes: PrefixMap[Route] = PrefixMap()

    def update(self, route: Route) -> Optional[Route]:
        """Install an announcement; returns the route it replaced, if any."""
        if route.source != self.peer:
            raise RibError(
                f"route from {route.source.name} offered to Adj-RIB-In "
                f"of {self.peer.name}"
            )
        previous = self._routes.get(route.prefix)
        self._routes[route.prefix] = route
        return previous

    def withdraw(self, prefix: Prefix) -> Optional[Route]:
        """Remove a route; returns it, or None if we had none (BGP allows
        withdrawing routes the receiver never accepted)."""
        return self._routes.pop(prefix, None)

    def get(self, prefix: Prefix) -> Optional[Route]:
        return self._routes.get(prefix)

    def routes(self) -> Iterator[Route]:
        yield from self._routes.values()

    def prefixes(self) -> Iterator[Prefix]:
        yield from self._routes.keys()

    def clear(self) -> List[Route]:
        """Drop everything (session down); returns the dropped routes."""
        dropped = list(self._routes.values())
        self._routes.clear()
        return dropped

    def __len__(self) -> int:
        return len(self._routes)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._routes


@dataclass(frozen=True)
class RibChange:
    """A best-path change event emitted by the Loc-RIB."""

    prefix: Prefix
    old_best: Optional[Route]
    new_best: Optional[Route]

    @property
    def is_new_prefix(self) -> bool:
        return self.old_best is None and self.new_best is not None

    @property
    def is_prefix_gone(self) -> bool:
        return self.old_best is not None and self.new_best is None


class LocRib:
    """All accepted routes for all prefixes, with best-path selection.

    Routes are keyed by (prefix, source session): a peer announces at most
    one route per prefix, so a re-announcement replaces the old one
    (implicit withdraw).
    """

    def __init__(
        self,
        config: DecisionConfig = DEFAULT_CONFIG,
        journal_limit: int = DEFAULT_JOURNAL_LIMIT,
    ) -> None:
        self._config = config
        self._by_prefix: PrefixMap[Dict[PeerDescriptor, Route]] = PrefixMap()
        self._best_cache: Dict[Prefix, Route] = {}
        # Monotonic mutation counter: bumped on every accepted update or
        # effective withdraw.  Downstream caches (egress resolution,
        # sFlow sample aggregation) key on it to stay exactly equivalent
        # to uncached recomputation.
        self._version = 0
        # The delta journal: one entry per version bump, newest last, so
        # "which prefixes changed since version V" is the last
        # ``version - V`` entries.  The deque's maxlen bounds memory; a
        # reader that falls further behind than the cap gets ``None``
        # from :meth:`changed_since` and must do a full pass.
        self._journal: Deque[Prefix] = deque(maxlen=journal_limit)
        # Live count of injected (Edge Fabric) routes currently held, so
        # the dataplane can skip more-specific trie walks entirely in
        # the common no-overrides case.
        self._injected = 0
        # Per-prefix count of injected holder routes, kept in a trie so
        # "which injected prefix covers this target" is one LPM walk
        # instead of a scan.  Aggregated override resolution keys on it.
        self._injected_map: PrefixMap[int] = PrefixMap()
        # Decision-ranked route lists per prefix, invalidated per-prefix
        # on churn: the controller re-reads every prefix's ranking each
        # cycle while the route set barely changes between cycles.
        self._ranked_cache: Dict[Prefix, List[Route]] = {}

    @property
    def decision_config(self) -> DecisionConfig:
        return self._config

    @property
    def version(self) -> int:
        """Monotonic counter of RIB mutations (cache invalidation key)."""
        return self._version

    @property
    def injected_route_count(self) -> int:
        """How many injected routes the RIB currently holds."""
        return self._injected

    # -- mutation -----------------------------------------------------------

    def update(self, route: Route) -> RibChange:
        """Install or replace a route; returns the best-path change."""
        old_best = self._best_cache.get(route.prefix)
        holders = self._by_prefix.get(route.prefix)
        if holders is None:
            holders = {}
            self._by_prefix[route.prefix] = holders
        previous = holders.get(route.source)
        if previous is not None and previous.is_injected:
            self._note_injected(route.prefix, -1)
        if route.is_injected:
            self._note_injected(route.prefix, +1)
        holders[route.source] = route
        new_best = best_route(list(holders.values()), self._config)
        self._set_best(route.prefix, new_best)
        self._version += 1
        self._journal.append(route.prefix)
        self._ranked_cache.pop(route.prefix, None)
        return RibChange(route.prefix, old_best, new_best)

    def withdraw(self, prefix: Prefix, source: PeerDescriptor) -> RibChange:
        """Remove the route *source* announced for *prefix*, if present."""
        old_best = self._best_cache.get(prefix)
        holders = self._by_prefix.get(prefix)
        if holders is None or source not in holders:
            return RibChange(prefix, old_best, old_best)
        removed = holders.pop(source)
        if removed.is_injected:
            self._note_injected(prefix, -1)
        if holders:
            new_best = best_route(list(holders.values()), self._config)
        else:
            self._by_prefix.pop(prefix, None)
            new_best = None
        self._set_best(prefix, new_best)
        self._version += 1
        self._journal.append(prefix)
        self._ranked_cache.pop(prefix, None)
        return RibChange(prefix, old_best, new_best)

    def withdraw_peer(self, source: PeerDescriptor) -> List[RibChange]:
        """Remove every route from one session (session down)."""
        affected = [
            prefix
            for prefix, holders in self._by_prefix.items()
            if source in holders
        ]
        return [self.withdraw(prefix, source) for prefix in affected]

    def load_routes(self, routes: List[Route]) -> None:
        """Bulk-install many routes with one decision pass per prefix.

        Observationally identical to calling :meth:`update` per route —
        the version advances once per route, the journal records every
        prefix in input order, injected accounting matches — but the
        best-path recomputation runs once per *prefix group* instead of
        once per route.  Intermediate bests are unobservable to any
        reader (no query can interleave with the loop), so skipping them
        is sound.  Scale harnesses use this to seed full tables.
        """
        touched: Dict[Prefix, Dict[PeerDescriptor, Route]] = {}
        for route in routes:
            holders = self._by_prefix.get(route.prefix)
            if holders is None:
                holders = {}
                self._by_prefix[route.prefix] = holders
            previous = holders.get(route.source)
            if previous is not None and previous.is_injected:
                self._note_injected(route.prefix, -1)
            if route.is_injected:
                self._note_injected(route.prefix, +1)
            holders[route.source] = route
            self._version += 1
            self._journal.append(route.prefix)
            touched[route.prefix] = holders
        for prefix, holders in touched.items():
            self._set_best(
                prefix, best_route(list(holders.values()), self._config)
            )
            self._ranked_cache.pop(prefix, None)

    def _set_best(self, prefix: Prefix, best: Optional[Route]) -> None:
        if best is None:
            self._best_cache.pop(prefix, None)
        else:
            self._best_cache[prefix] = best

    def _note_injected(self, prefix: Prefix, delta: int) -> None:
        """Adjust the injected-route count for *prefix* by ±1."""
        self._injected += delta
        count = (self._injected_map.get(prefix) or 0) + delta
        if count > 0:
            self._injected_map[prefix] = count
        else:
            self._injected_map.pop(prefix, None)

    # -- the delta journal ---------------------------------------------------

    def changed_since(self, version: int) -> Optional[Set[Prefix]]:
        """Prefixes whose route set mutated after *version*.

        The set is conservative: any accepted update or effective
        withdraw marks its prefix changed, even if the ranking came out
        the same.  Returns an empty set when nothing changed, and
        ``None`` when *version* is older than the journal reaches — the
        caller must then fall back to a full pass (exactly what a BMP
        resync or a fresh reader would do anyway).
        """
        if version > self._version:
            raise RibError(
                f"reader version {version} is ahead of the RIB "
                f"({self._version})"
            )
        count = self._version - version
        if count == 0:
            return set()
        if count > len(self._journal):
            return None
        return set(islice(self._journal, len(self._journal) - count, None))

    # -- queries -----------------------------------------------------------

    def best(self, prefix: Prefix) -> Optional[Route]:
        return self._best_cache.get(prefix)

    def routes_for(self, prefix: Prefix) -> List[Route]:
        """All routes for *prefix* in decision-process order."""
        ranked = self._ranked_cache.get(prefix)
        if ranked is None:
            holders = self._by_prefix.get(prefix)
            if not holders:
                return []
            ranked = rank_routes(list(holders.values()), self._config)
            self._ranked_cache[prefix] = ranked
        # Copy so callers can't mutate the cached ranking.
        return list(ranked)

    def routes_unranked(self, prefix: Prefix) -> List[Route]:
        """All routes for *prefix* in arbitrary order (no decision pass)."""
        holders = self._by_prefix.get(prefix)
        return list(holders.values()) if holders else []

    def route_from(
        self, prefix: Prefix, source: PeerDescriptor
    ) -> Optional[Route]:
        holders = self._by_prefix.get(prefix)
        return holders.get(source) if holders else None

    def prefixes(self, family: Optional[Family] = None) -> Iterator[Prefix]:
        for prefix in self._by_prefix.keys():
            if family is None or prefix.family is family:
                yield prefix

    def items(self) -> Iterator[Tuple[Prefix, List[Route]]]:
        """(prefix, ranked routes) for every prefix."""
        for prefix, holders in self._by_prefix.items():
            yield prefix, rank_routes(list(holders.values()), self._config)

    def best_routes(self) -> Iterator[Route]:
        for prefix in self._by_prefix.keys():
            best = self._best_cache.get(prefix)
            if best is not None:
                yield best

    def longest_match(self, target: Prefix) -> Optional[Route]:
        """Best route of the most specific prefix covering *target*."""
        found = self._by_prefix.longest_match(target)
        if found is None:
            return None
        return self._best_cache.get(found[0])

    def more_specifics(self, covering: Prefix) -> List[Route]:
        """Best routes of prefixes strictly more specific than *covering*."""
        out: List[Route] = []
        for prefix, _holders in self._by_prefix.covered_by(covering):
            if prefix == covering:
                continue
            best = self._best_cache.get(prefix)
            if best is not None:
                out.append(best)
        return out

    def routed_under(self, covering: Prefix) -> Iterator[Prefix]:
        """Organically-routed prefixes at or under *covering*.

        Deterministic pre-order (lexicographic); prefixes present only
        because of an injected route are skipped — they create no
        forwarding granularity of their own.  The override aggregator
        walks this to validate a candidate covering prefix.
        """
        if not self._injected:
            for prefix, _holders in self._by_prefix.subtree(covering):
                yield prefix
            return
        for prefix, holders in self._by_prefix.subtree(covering):
            for route in holders.values():
                if not route.is_injected:
                    yield prefix
                    break

    def injected_covering(self, target: Prefix) -> Optional[Route]:
        """The injected route of the most specific injected prefix
        covering *target* (inclusive), or None.

        Aggregated override resolution: a detour installed at a covering
        prefix applies to every routed prefix beneath it, so the
        dataplane asks "is there an injected route above this routed
        prefix" with one LPM walk over the injected-prefix trie.
        """
        if not self._injected:
            return None
        found = self._injected_map.longest_match(target)
        if found is None:
            return None
        best = self._best_cache.get(found[0])
        if best is not None and best.is_injected:
            return best
        return None

    def effective_lookup(self, target: Prefix) -> Optional[Route]:
        """The route a packet addressed within *target* resolves to.

        Models the controller's override semantics end to end: the
        *routed prefix* is the longest organic match (prefixes that
        exist only because of injection do not create new forwarding
        granularity), and an injected route at the routed prefix or any
        covering prefix overrides its organic best.  Per-/24 flat
        installs and covering-aggregate installs are observationally
        identical under this lookup — the property the aggregation
        layer's validity rule guarantees.
        """
        routed: Optional[Prefix] = None
        for prefix, holders in self._by_prefix.matches(target):
            for route in holders.values():
                if not route.is_injected:
                    routed = prefix
                    break
        if routed is None:
            return None
        injected = self.injected_covering(routed)
        if injected is not None:
            return injected
        # No injected route covers the routed prefix, so its best is the
        # organic best (an injected holder at the routed prefix would
        # have been returned by injected_covering above).
        return self._best_cache.get(routed)

    def route_count(self) -> int:
        """Total routes across all prefixes (not just best paths)."""
        return sum(len(holders) for holders in self._by_prefix.values())

    def __len__(self) -> int:
        """Number of prefixes with at least one route."""
        return len(self._by_prefix)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._by_prefix
