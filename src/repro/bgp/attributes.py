"""BGP path attributes: AS_PATH, ORIGIN, communities, and the attribute set.

These are value types with full wire encode/decode for the attributes the
reproduction uses.  AS paths always use 4-octet AS numbers on the wire
(RFC 6793 behaviour between capable speakers, which all simulated speakers
are).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from enum import IntEnum
from typing import Iterable, Iterator, Optional, Sequence, Tuple

from ..netbase.addr import Family
from ..netbase.asn import validate_asn
from ..netbase.errors import MalformedMessage, TruncatedMessage

__all__ = [
    "Origin",
    "SegmentType",
    "AsPath",
    "Community",
    "community",
    "format_community",
    "PathAttributes",
    "AttrFlag",
    "AttrType",
]


class Origin(IntEnum):
    """ORIGIN attribute; lower is preferred by the decision process."""

    IGP = 0
    EGP = 1
    INCOMPLETE = 2


class SegmentType(IntEnum):
    """AS_PATH segment types (RFC 4271 §4.3)."""

    AS_SET = 1
    AS_SEQUENCE = 2


class AsPath:
    """An AS_PATH: an ordered list of segments.

    >>> path = AsPath.sequence(64500, 3356, 15169)
    >>> path.length()
    3
    >>> path.prepend(64500).length()
    4
    >>> 3356 in path
    True
    """

    __slots__ = ("_segments",)

    def __init__(
        self, segments: Iterable[Tuple[SegmentType, Tuple[int, ...]]] = ()
    ) -> None:
        cleaned = []
        for seg_type, asns in segments:
            seg_type = SegmentType(seg_type)
            asns = tuple(validate_asn(asn) for asn in asns)
            if not asns:
                raise MalformedMessage("empty AS_PATH segment")
            if len(asns) > 255:
                raise MalformedMessage("AS_PATH segment longer than 255")
            cleaned.append((seg_type, asns))
        self._segments: Tuple[Tuple[SegmentType, Tuple[int, ...]], ...] = (
            tuple(cleaned)
        )

    @classmethod
    def sequence(cls, *asns: int) -> "AsPath":
        """A path that is a single AS_SEQUENCE (the common case)."""
        if not asns:
            return cls()
        return cls([(SegmentType.AS_SEQUENCE, tuple(asns))])

    @property
    def segments(self) -> Tuple[Tuple[SegmentType, Tuple[int, ...]], ...]:
        return self._segments

    def length(self) -> int:
        """Decision-process length: each AS_SET counts as one hop."""
        total = 0
        for seg_type, asns in self._segments:
            total += 1 if seg_type is SegmentType.AS_SET else len(asns)
        return total

    def asns(self) -> Iterator[int]:
        """Every ASN mentioned anywhere in the path."""
        for _seg_type, asns in self._segments:
            yield from asns

    def __contains__(self, asn: int) -> bool:
        return any(candidate == asn for candidate in self.asns())

    def contains_loop(self, local_asn: int) -> bool:
        """True if *local_asn* already appears (eBGP loop prevention)."""
        return local_asn in self

    @property
    def origin_asn(self) -> Optional[int]:
        """The AS that originated the route (rightmost), if unambiguous."""
        if not self._segments:
            return None
        seg_type, asns = self._segments[-1]
        if seg_type is SegmentType.AS_SET:
            return None
        return asns[-1]

    @property
    def next_hop_asn(self) -> Optional[int]:
        """The neighbor AS the route was learned from (leftmost)."""
        if not self._segments:
            return None
        seg_type, asns = self._segments[0]
        if seg_type is SegmentType.AS_SET:
            return None
        return asns[0]

    def prepend(self, asn: int, count: int = 1) -> "AsPath":
        """A new path with *asn* prepended *count* times."""
        validate_asn(asn)
        if count < 1:
            raise ValueError("prepend count must be >= 1")
        head = (asn,) * count
        if (
            self._segments
            and self._segments[0][0] is SegmentType.AS_SEQUENCE
            and len(self._segments[0][1]) + count <= 255
        ):
            first = (SegmentType.AS_SEQUENCE, head + self._segments[0][1])
            return AsPath((first,) + self._segments[1:])
        return AsPath(
            ((SegmentType.AS_SEQUENCE, head),) + self._segments
        )

    # -- wire format (4-octet ASNs) -------------------------------------------

    def encode(self) -> bytes:
        parts = []
        for seg_type, asns in self._segments:
            parts.append(struct.pack("!BB", seg_type, len(asns)))
            parts.append(b"".join(struct.pack("!I", asn) for asn in asns))
        return b"".join(parts)

    @classmethod
    def decode(cls, data: bytes) -> "AsPath":
        segments = []
        offset = 0
        while offset < len(data):
            if offset + 2 > len(data):
                raise TruncatedMessage("AS_PATH segment header truncated")
            seg_type, count = struct.unpack_from("!BB", data, offset)
            offset += 2
            end = offset + 4 * count
            if end > len(data):
                raise TruncatedMessage("AS_PATH segment body truncated")
            asns = struct.unpack_from(f"!{count}I", data, offset)
            offset = end
            try:
                segments.append((SegmentType(seg_type), tuple(asns)))
            except ValueError as exc:
                raise MalformedMessage(
                    f"unknown AS_PATH segment type {seg_type}"
                ) from exc
        return cls(segments)

    # -- value semantics -------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AsPath) and self._segments == other._segments

    def __hash__(self) -> int:
        return hash(self._segments)

    def __len__(self) -> int:
        return self.length()

    def __repr__(self) -> str:
        return f"AsPath({str(self)!r})"

    def __str__(self) -> str:
        rendered = []
        for seg_type, asns in self._segments:
            text = " ".join(str(asn) for asn in asns)
            if seg_type is SegmentType.AS_SET:
                rendered.append("{" + text + "}")
            else:
                rendered.append(text)
        return " ".join(rendered)


#: A standard community is a 32-bit value, conventionally "asn:value".
Community = int


def community(asn: int, value: int) -> Community:
    """Build an ``asn:value`` standard community."""
    if not 0 <= asn <= 0xFFFF or not 0 <= value <= 0xFFFF:
        raise ValueError(f"community parts out of range: {asn}:{value}")
    return (asn << 16) | value


def format_community(value: Community) -> str:
    return f"{value >> 16}:{value & 0xFFFF}"


class AttrFlag(IntEnum):
    """Path attribute flag bits (RFC 4271 §4.3)."""

    OPTIONAL = 0x80
    TRANSITIVE = 0x40
    PARTIAL = 0x20
    EXTENDED_LENGTH = 0x10


class AttrType(IntEnum):
    """Path attribute type codes used by this implementation."""

    ORIGIN = 1
    AS_PATH = 2
    NEXT_HOP = 3
    MULTI_EXIT_DISC = 4
    LOCAL_PREF = 5
    ATOMIC_AGGREGATE = 6
    AGGREGATOR = 7
    COMMUNITIES = 8
    MP_REACH_NLRI = 14
    MP_UNREACH_NLRI = 15


@dataclass(frozen=True)
class PathAttributes:
    """The attribute set carried by one route.

    ``next_hop`` is (family, integer address).  ``local_pref`` is optional
    on the wire for eBGP-learned routes; the import policy always assigns
    one before a route enters a RIB, so the decision process can assume it
    is present (defaulting to 100 when not).
    """

    origin: Origin = Origin.IGP
    as_path: AsPath = field(default_factory=AsPath)
    next_hop: Tuple[Family, int] = (Family.IPV4, 0)
    med: Optional[int] = None
    local_pref: Optional[int] = None
    communities: frozenset = frozenset()
    atomic_aggregate: bool = False
    aggregator: Optional[Tuple[int, int]] = None  # (asn, router-id)

    def __post_init__(self) -> None:
        object.__setattr__(self, "communities", frozenset(self.communities))
        if self.med is not None and not 0 <= self.med <= 0xFFFFFFFF:
            raise MalformedMessage(f"MED {self.med} out of range")
        if self.local_pref is not None and not 0 <= self.local_pref <= 0xFFFFFFFF:
            raise MalformedMessage(
                f"LOCAL_PREF {self.local_pref} out of range"
            )

    @property
    def effective_local_pref(self) -> int:
        """LOCAL_PREF with the RFC 4271 default of 100 when unset."""
        return 100 if self.local_pref is None else self.local_pref

    def with_local_pref(self, value: int) -> "PathAttributes":
        return replace(self, local_pref=value)

    def with_med(self, value: Optional[int]) -> "PathAttributes":
        return replace(self, med=value)

    def with_next_hop(self, family: Family, address: int) -> "PathAttributes":
        return replace(self, next_hop=(family, address))

    def with_communities(self, values: Iterable[Community]) -> "PathAttributes":
        return replace(self, communities=frozenset(values))

    def add_communities(self, values: Iterable[Community]) -> "PathAttributes":
        return replace(self, communities=self.communities | frozenset(values))

    def prepended(self, asn: int, count: int = 1) -> "PathAttributes":
        return replace(self, as_path=self.as_path.prepend(asn, count))

    def has_community(self, value: Community) -> bool:
        return value in self.communities

    def sorted_communities(self) -> Sequence[Community]:
        return sorted(self.communities)
