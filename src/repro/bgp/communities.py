"""The community plan used by this deployment.

Following the paper, routes are tagged at ingress with communities that
record *how* they were learned (peer type, router), and the Edge Fabric
injector marks its override announcements with a dedicated community so
that they are recognizable everywhere — in RIB dumps, in BMP feeds, and by
the guard that stops the controller from treating its own injected routes
as fresh input (a feedback loop the paper explicitly engineers away).

All values live under one reserved "operator" ASN so they cannot collide
with communities received from the Internet.
"""

from __future__ import annotations

from .attributes import Community, community
from .peering import PeerType

__all__ = [
    "OPERATOR_ASN",
    "INJECTED",
    "ALT_PATH_MEASUREMENT",
    "PEER_TYPE_COMMUNITIES",
    "peer_type_community",
    "peer_type_from_communities",
]

#: The content provider's own AS (Facebook's 32934 in the paper; any value
#: works — tests rely on it being stable).
OPERATOR_ASN = 64600

#: Marks routes announced by the Edge Fabric injector.
INJECTED: Community = community(OPERATOR_ASN, 911)

#: Marks routes injected into alternate-path measurement tables only.
ALT_PATH_MEASUREMENT: Community = community(OPERATOR_ASN, 912)

PEER_TYPE_COMMUNITIES = {
    PeerType.PRIVATE: community(OPERATOR_ASN, 101),
    PeerType.PUBLIC: community(OPERATOR_ASN, 102),
    PeerType.ROUTE_SERVER: community(OPERATOR_ASN, 103),
    PeerType.TRANSIT: community(OPERATOR_ASN, 104),
    PeerType.INTERNAL: community(OPERATOR_ASN, 105),
}

_COMMUNITY_TO_PEER_TYPE = {
    value: peer_type for peer_type, value in PEER_TYPE_COMMUNITIES.items()
}


def peer_type_community(peer_type: PeerType) -> Community:
    """The ingress-tagging community for a peer type."""
    return PEER_TYPE_COMMUNITIES[peer_type]


def peer_type_from_communities(communities) -> PeerType | None:
    """Recover the tagged peer type from a route's community set."""
    for value in communities:
        found = _COMMUNITY_TO_PEER_TYPE.get(value)
        if found is not None:
            return found
    return None
