"""Routing policy engine: ordered match/action rules applied at import.

Peering routers apply an import policy to every route learned from a
neighbor before it enters the Adj-RIB-In.  The policy both *sanitizes*
(reject loops, martians, absurd paths) and *ranks* (assign LOCAL_PREF by
peer type — the paper's "prefer peer routes over transit, prefer private
interconnects over public exchanges") and *tags* (communities recording
ingress peer type, so any later consumer can classify a route without
carrying the session object around).

The engine is a first-match-wins rule list, the shape real router configs
take, so tests can express realistic policies (prefix blackholes,
AS-path-based deprefs, community-triggered actions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..netbase.addr import Family, Prefix
from ..netbase.errors import PolicyError
from .attributes import Community
from .communities import peer_type_community
from .peering import PeerType
from .route import Route

__all__ = [
    "Matcher",
    "Action",
    "match_prefix_within",
    "match_prefix_length_at_least",
    "match_too_specific",
    "match_peer_type",
    "match_community",
    "match_as_path_contains",
    "match_as_path_longer_than",
    "match_any",
    "set_local_pref",
    "add_community",
    "set_med",
    "strip_med",
    "prepend_as",
    "PolicyRule",
    "PolicyResult",
    "RoutePolicy",
    "standard_import_policy",
    "LOCAL_PREF_BY_PEER_TYPE",
]

#: A matcher takes a route and says whether the rule applies.
Matcher = Callable[[Route], bool]

#: An action transforms a route (returning the new route).
Action = Callable[[Route], Route]


# -- matchers ----------------------------------------------------------------


def match_prefix_within(covering: Prefix) -> Matcher:
    """Match routes whose prefix is covered by *covering*."""

    def matcher(route: Route) -> bool:
        return covering.covers(route.prefix)

    return matcher


def match_prefix_length_at_least(length: int) -> Matcher:
    """Match overly-specific prefixes (e.g. reject longer than /24)."""

    def matcher(route: Route) -> bool:
        return route.prefix.length >= length

    return matcher


def match_too_specific(v4_limit: int = 24, v6_limit: int = 48) -> Matcher:
    """Match prefixes more specific than the family's acceptance limit
    (the conventional /24 for IPv4 and /48 for IPv6)."""

    def matcher(route: Route) -> bool:
        limit = v4_limit if route.prefix.family is Family.IPV4 else v6_limit
        return route.prefix.length > limit

    return matcher


def match_peer_type(*peer_types: PeerType) -> Matcher:
    accepted = frozenset(peer_types)

    def matcher(route: Route) -> bool:
        return route.peer_type in accepted

    return matcher


def match_community(value: Community) -> Matcher:
    def matcher(route: Route) -> bool:
        return route.attributes.has_community(value)

    return matcher


def match_as_path_contains(asn: int) -> Matcher:
    def matcher(route: Route) -> bool:
        return asn in route.attributes.as_path

    return matcher


def match_as_path_longer_than(length: int) -> Matcher:
    def matcher(route: Route) -> bool:
        return route.as_path_length > length

    return matcher


def match_any(_route: Route) -> bool:
    return True


# -- actions -------------------------------------------------------------------


def set_local_pref(value: int) -> Action:
    def action(route: Route) -> Route:
        return route.with_local_pref(value)

    return action


def add_community(value: Community) -> Action:
    def action(route: Route) -> Route:
        return route.with_attributes(
            route.attributes.add_communities([value])
        )

    return action


def set_med(value: int) -> Action:
    def action(route: Route) -> Route:
        return route.with_attributes(route.attributes.with_med(value))

    return action


def strip_med(route: Route) -> Route:
    return route.with_attributes(route.attributes.with_med(None))


def prepend_as(asn: int, count: int = 1) -> Action:
    def action(route: Route) -> Route:
        return route.with_attributes(route.attributes.prepended(asn, count))

    return action


# -- rules and policy ------------------------------------------------------------


@dataclass(frozen=True)
class PolicyRule:
    """One first-match-wins rule: if all matchers hit, run the actions and
    accept (or reject if ``reject`` is set)."""

    name: str
    matchers: Tuple[Matcher, ...] = ()
    actions: Tuple[Action, ...] = ()
    reject: bool = False

    def matches(self, route: Route) -> bool:
        return all(matcher(route) for matcher in self.matchers)

    def apply(self, route: Route) -> Optional[Route]:
        if self.reject:
            return None
        for action in self.actions:
            route = action(route)
        return route


@dataclass(frozen=True)
class PolicyResult:
    """Outcome of evaluating a policy against one route."""

    route: Optional[Route]
    matched_rule: Optional[str]

    @property
    def accepted(self) -> bool:
        return self.route is not None


@dataclass
class RoutePolicy:
    """An ordered rule list with a default action.

    ``default_accept`` decides the fate of routes no rule matches; import
    policies typically accept-by-default after sanitization rules, export
    policies typically reject-by-default.
    """

    name: str
    rules: List[PolicyRule] = field(default_factory=list)
    default_accept: bool = True

    def evaluate(self, route: Route) -> PolicyResult:
        for rule in self.rules:
            if rule.matches(route):
                return PolicyResult(rule.apply(route), rule.name)
        if self.default_accept:
            return PolicyResult(route, None)
        return PolicyResult(None, None)

    def apply(self, route: Route) -> Optional[Route]:
        """Evaluate and return just the transformed route (or None)."""
        return self.evaluate(route).route

    def prepend_rule(self, rule: PolicyRule) -> None:
        self.rules.insert(0, rule)

    def append_rule(self, rule: PolicyRule) -> None:
        self.rules.append(rule)


#: Default LOCAL_PREF tiers: prefer peer routes over transit, and among
#: peers prefer private interconnects, then public exchanges, then route
#: servers — the ranking described in §2 of the paper.
LOCAL_PREF_BY_PEER_TYPE = {
    PeerType.PRIVATE: 300,
    PeerType.PUBLIC: 280,
    PeerType.ROUTE_SERVER: 260,
    PeerType.TRANSIT: 100,
}

#: Paths longer than this are junk (route leaks, prepending storms).
MAX_REASONABLE_AS_PATH = 30


def standard_import_policy(
    local_asn: int,
    peer_type: PeerType,
    local_pref_overrides: Optional[dict] = None,
) -> RoutePolicy:
    """The import policy a PR applies to one eBGP session.

    Rules, in order:

    1. Reject routes whose AS_PATH already contains our ASN (loops).
    2. Reject absurdly long AS paths.
    3. Reject host-specific and near-host prefixes (longer than /24 v4
       semantics are approximated family-independently via /25+... v4 and
       /49+ v6 are handled by the length rule given per family at build).
    4. Accept everything else: assign the peer-type LOCAL_PREF, strip any
       received MED on peering sessions (we do not honor peer MEDs — the
       controller, not neighbors, balances our egress), and tag the
       ingress peer-type community.
    """
    if peer_type is PeerType.INTERNAL:
        raise PolicyError("import policy is for eBGP sessions only")
    tiers = dict(LOCAL_PREF_BY_PEER_TYPE)
    if local_pref_overrides:
        tiers.update(local_pref_overrides)
    local_pref = tiers[peer_type]
    accept_actions: Tuple[Action, ...] = (
        set_local_pref(local_pref),
        add_community(peer_type_community(peer_type)),
    )
    if peer_type is not PeerType.TRANSIT:
        accept_actions = (strip_med,) + accept_actions
    return RoutePolicy(
        name=f"import-{peer_type.value}",
        rules=[
            PolicyRule(
                name="reject-as-loop",
                matchers=(match_as_path_contains(local_asn),),
                reject=True,
            ),
            PolicyRule(
                name="reject-long-path",
                matchers=(match_as_path_longer_than(MAX_REASONABLE_AS_PATH),),
                reject=True,
            ),
            PolicyRule(
                name="reject-too-specific",
                matchers=(match_too_specific(),),
                reject=True,
            ),
            PolicyRule(
                name="accept-tag-and-rank",
                matchers=(match_any,),
                actions=accept_actions,
            ),
        ],
        default_accept=False,
    )


def apply_policies(
    route: Route, policies: Sequence[RoutePolicy]
) -> Optional[Route]:
    """Run a route through a policy chain; None means rejected."""
    current: Optional[Route] = route
    for policy in policies:
        if current is None:
            return None
        current = policy.apply(current)
    return current
