"""BGP substrate: wire codec, RIBs, decision process, policy, sessions."""

from .attributes import (
    AsPath,
    AttrFlag,
    AttrType,
    Community,
    Origin,
    PathAttributes,
    SegmentType,
    community,
    format_community,
)
from .communities import (
    ALT_PATH_MEASUREMENT,
    INJECTED,
    OPERATOR_ASN,
    peer_type_community,
    peer_type_from_communities,
)
from .decision import (
    DecisionConfig,
    best_route,
    compare_routes,
    rank_routes,
)
from .fsm import FsmEvent, SessionFsm, SessionState
from .messages import (
    Capability,
    KeepaliveMessage,
    MessageType,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
    decode_message,
    decode_stream,
    encode_message,
)
from .peering import PeerDescriptor, PeerType
from .policy import (
    LOCAL_PREF_BY_PEER_TYPE,
    PolicyRule,
    RoutePolicy,
    standard_import_policy,
)
from .rib import AdjRibIn, LocRib, RibChange
from .route import Route
from .speaker import BgpSpeaker, RouteEvent, Session

__all__ = [
    "AsPath",
    "AttrFlag",
    "AttrType",
    "Community",
    "Origin",
    "PathAttributes",
    "SegmentType",
    "community",
    "format_community",
    "ALT_PATH_MEASUREMENT",
    "INJECTED",
    "OPERATOR_ASN",
    "peer_type_community",
    "peer_type_from_communities",
    "DecisionConfig",
    "best_route",
    "compare_routes",
    "rank_routes",
    "FsmEvent",
    "SessionFsm",
    "SessionState",
    "Capability",
    "KeepaliveMessage",
    "MessageType",
    "NotificationMessage",
    "OpenMessage",
    "UpdateMessage",
    "decode_message",
    "decode_stream",
    "encode_message",
    "PeerDescriptor",
    "PeerType",
    "LOCAL_PREF_BY_PEER_TYPE",
    "PolicyRule",
    "RoutePolicy",
    "standard_import_policy",
    "AdjRibIn",
    "LocRib",
    "RibChange",
    "Route",
    "BgpSpeaker",
    "RouteEvent",
    "Session",
]
