"""BGP-4 message wire codec (RFC 4271, with RFC 6793 four-octet ASNs and
RFC 4760 multiprotocol NLRI for IPv6).

The simulated speakers, the BMP collector and the Edge Fabric injector all
exchange *real* BGP byte strings through this codec rather than passing
Python objects around.  That keeps the reproduction honest: the injector
emits the same UPDATE a production ExaBGP-style injector would, and tests
can assert on wire bytes.

One :class:`UpdateMessage` carries routes of a single address family —
IPv4 uses the classic NLRI fields, IPv6 rides in MP_REACH_NLRI /
MP_UNREACH_NLRI attributes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import IntEnum
from typing import List, Optional, Sequence, Tuple

from ..netbase.addr import Family, Prefix
from ..netbase.asn import AS_TRANS, validate_asn
from ..netbase.errors import (
    MalformedMessage,
    TruncatedMessage,
    UnsupportedFeature,
)
from .attributes import (
    AsPath,
    AttrFlag,
    AttrType,
    Origin,
    PathAttributes,
)

__all__ = [
    "MessageType",
    "Capability",
    "OpenMessage",
    "UpdateMessage",
    "KeepaliveMessage",
    "NotificationMessage",
    "BgpMessage",
    "encode_message",
    "decode_message",
    "decode_stream",
    "MARKER",
    "HEADER_LEN",
    "MAX_MESSAGE_LEN",
]

MARKER = b"\xff" * 16
HEADER_LEN = 19
MAX_MESSAGE_LEN = 4096

_SAFI_UNICAST = 1


class MessageType(IntEnum):
    OPEN = 1
    UPDATE = 2
    NOTIFICATION = 3
    KEEPALIVE = 4


class CapabilityCode(IntEnum):
    MULTIPROTOCOL = 1
    FOUR_OCTET_AS = 65


@dataclass(frozen=True)
class Capability:
    """An OPEN capability (RFC 5492).  ``value`` is the raw payload."""

    code: int
    value: bytes = b""

    @classmethod
    def multiprotocol(cls, family: Family) -> "Capability":
        payload = struct.pack("!HBB", int(family), 0, _SAFI_UNICAST)
        return cls(CapabilityCode.MULTIPROTOCOL, payload)

    @classmethod
    def four_octet_as(cls, asn: int) -> "Capability":
        return cls(CapabilityCode.FOUR_OCTET_AS, struct.pack("!I", asn))


@dataclass(frozen=True)
class OpenMessage:
    asn: int
    hold_time: int
    router_id: int
    capabilities: Tuple[Capability, ...] = ()
    version: int = 4

    def __post_init__(self) -> None:
        validate_asn(self.asn)
        if not 0 <= self.hold_time <= 0xFFFF:
            raise MalformedMessage(f"hold time {self.hold_time} out of range")
        if not 0 <= self.router_id <= 0xFFFFFFFF:
            raise MalformedMessage("router id out of range")

    @classmethod
    def standard(
        cls, asn: int, router_id: int, hold_time: int = 90
    ) -> "OpenMessage":
        """An OPEN advertising the capabilities every simulated speaker has."""
        return cls(
            asn=asn,
            hold_time=hold_time,
            router_id=router_id,
            capabilities=(
                Capability.multiprotocol(Family.IPV4),
                Capability.multiprotocol(Family.IPV6),
                Capability.four_octet_as(asn),
            ),
        )

    @property
    def supports_four_octet_as(self) -> bool:
        return any(
            cap.code == CapabilityCode.FOUR_OCTET_AS
            for cap in self.capabilities
        )

    def supported_families(self) -> Tuple[Family, ...]:
        families = []
        for cap in self.capabilities:
            if cap.code == CapabilityCode.MULTIPROTOCOL and len(cap.value) == 4:
                afi = struct.unpack("!H", cap.value[:2])[0]
                try:
                    families.append(Family(afi))
                except ValueError:
                    continue
        return tuple(families) or (Family.IPV4,)


@dataclass(frozen=True)
class UpdateMessage:
    """One BGP UPDATE: withdrawals and/or announcements of one family."""

    family: Family = Family.IPV4
    withdrawn: Tuple[Prefix, ...] = ()
    announced: Tuple[Prefix, ...] = ()
    attributes: Optional[PathAttributes] = None

    def __post_init__(self) -> None:
        for prefix in (*self.withdrawn, *self.announced):
            if prefix.family is not self.family:
                raise MalformedMessage(
                    f"prefix {prefix} does not match update family "
                    f"{self.family.name}"
                )
        if self.announced and self.attributes is None:
            raise MalformedMessage("announcement without path attributes")

    @property
    def is_withdraw_only(self) -> bool:
        return bool(self.withdrawn) and not self.announced

    @property
    def is_end_of_rib(self) -> bool:
        """An empty IPv4 UPDATE is the conventional End-of-RIB marker."""
        return (
            not self.withdrawn
            and not self.announced
            and self.attributes is None
        )


@dataclass(frozen=True)
class KeepaliveMessage:
    pass


class NotificationCode(IntEnum):
    MESSAGE_HEADER_ERROR = 1
    OPEN_MESSAGE_ERROR = 2
    UPDATE_MESSAGE_ERROR = 3
    HOLD_TIMER_EXPIRED = 4
    FSM_ERROR = 5
    CEASE = 6


@dataclass(frozen=True)
class NotificationMessage:
    code: int
    subcode: int = 0
    data: bytes = b""


BgpMessage = (
    OpenMessage | UpdateMessage | KeepaliveMessage | NotificationMessage
)


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


def _frame(msg_type: MessageType, body: bytes) -> bytes:
    length = HEADER_LEN + len(body)
    if length > MAX_MESSAGE_LEN:
        raise MalformedMessage(
            f"message length {length} exceeds BGP maximum {MAX_MESSAGE_LEN}"
        )
    return MARKER + struct.pack("!HB", length, msg_type) + body


def _encode_open(msg: OpenMessage) -> bytes:
    wire_asn = msg.asn if msg.asn <= 0xFFFF else AS_TRANS
    caps = b""
    for cap in msg.capabilities:
        caps += struct.pack("!BB", cap.code, len(cap.value)) + cap.value
    params = b""
    if caps:
        # One optional parameter of type 2 (capabilities).
        params = struct.pack("!BB", 2, len(caps)) + caps
    body = struct.pack(
        "!BHHI B",
        msg.version,
        wire_asn,
        msg.hold_time,
        msg.router_id,
        len(params),
    ) + params
    return _frame(MessageType.OPEN, body)


def _encode_attr(flags: int, attr_type: int, payload: bytes) -> bytes:
    if len(payload) > 255 or flags & AttrFlag.EXTENDED_LENGTH:
        flags |= AttrFlag.EXTENDED_LENGTH
        return struct.pack("!BBH", flags, attr_type, len(payload)) + payload
    return struct.pack("!BBB", flags, attr_type, len(payload)) + payload


def _encode_nlri(prefixes: Sequence[Prefix]) -> bytes:
    return b"".join(prefix.nlri_bytes() for prefix in prefixes)


def _encode_attributes(
    attrs: PathAttributes,
    family: Family,
    announced: Sequence[Prefix],
) -> bytes:
    out = []
    well_known = AttrFlag.TRANSITIVE
    optional = AttrFlag.OPTIONAL
    out.append(
        _encode_attr(well_known, AttrType.ORIGIN, bytes([attrs.origin]))
    )
    out.append(
        _encode_attr(well_known, AttrType.AS_PATH, attrs.as_path.encode())
    )
    if family is Family.IPV4:
        next_hop_family, next_hop = attrs.next_hop
        if next_hop_family is not Family.IPV4:
            raise MalformedMessage("IPv4 update with non-IPv4 next hop")
        out.append(
            _encode_attr(
                well_known,
                AttrType.NEXT_HOP,
                next_hop.to_bytes(4, "big"),
            )
        )
    if attrs.med is not None:
        out.append(
            _encode_attr(
                optional,
                AttrType.MULTI_EXIT_DISC,
                struct.pack("!I", attrs.med),
            )
        )
    if attrs.local_pref is not None:
        out.append(
            _encode_attr(
                well_known,
                AttrType.LOCAL_PREF,
                struct.pack("!I", attrs.local_pref),
            )
        )
    if attrs.atomic_aggregate:
        out.append(_encode_attr(well_known, AttrType.ATOMIC_AGGREGATE, b""))
    if attrs.aggregator is not None:
        agg_asn, agg_id = attrs.aggregator
        out.append(
            _encode_attr(
                optional | AttrFlag.TRANSITIVE,
                AttrType.AGGREGATOR,
                struct.pack("!II", agg_asn, agg_id),
            )
        )
    if attrs.communities:
        payload = b"".join(
            struct.pack("!I", value) for value in attrs.sorted_communities()
        )
        out.append(
            _encode_attr(
                optional | AttrFlag.TRANSITIVE, AttrType.COMMUNITIES, payload
            )
        )
    if family is Family.IPV6 and announced:
        next_hop_family, next_hop = attrs.next_hop
        if next_hop_family is not Family.IPV6:
            raise MalformedMessage("IPv6 update with non-IPv6 next hop")
        payload = struct.pack("!HBB", int(Family.IPV6), _SAFI_UNICAST, 16)
        payload += next_hop.to_bytes(16, "big")
        payload += b"\x00"  # reserved
        payload += _encode_nlri(announced)
        out.append(_encode_attr(optional, AttrType.MP_REACH_NLRI, payload))
    return b"".join(out)


def _encode_update(msg: UpdateMessage) -> bytes:
    if msg.family is Family.IPV4:
        withdrawn = _encode_nlri(msg.withdrawn)
        attrs = (
            _encode_attributes(msg.attributes, msg.family, msg.announced)
            if msg.attributes is not None
            else b""
        )
        body = (
            struct.pack("!H", len(withdrawn))
            + withdrawn
            + struct.pack("!H", len(attrs))
            + attrs
            + _encode_nlri(msg.announced)
        )
        return _frame(MessageType.UPDATE, body)
    # IPv6: everything lives in MP attributes.
    attr_parts = b""
    if msg.withdrawn:
        payload = struct.pack("!HB", int(Family.IPV6), _SAFI_UNICAST)
        payload += _encode_nlri(msg.withdrawn)
        attr_parts += _encode_attr(
            AttrFlag.OPTIONAL, AttrType.MP_UNREACH_NLRI, payload
        )
    if msg.announced:
        assert msg.attributes is not None
        attr_parts += _encode_attributes(
            msg.attributes, Family.IPV6, msg.announced
        )
    body = (
        struct.pack("!H", 0)
        + struct.pack("!H", len(attr_parts))
        + attr_parts
    )
    return _frame(MessageType.UPDATE, body)


def encode_message(msg: BgpMessage) -> bytes:
    """Encode any BGP message to its on-the-wire bytes."""
    if isinstance(msg, OpenMessage):
        return _encode_open(msg)
    if isinstance(msg, UpdateMessage):
        return _encode_update(msg)
    if isinstance(msg, KeepaliveMessage):
        return _frame(MessageType.KEEPALIVE, b"")
    if isinstance(msg, NotificationMessage):
        body = struct.pack("!BB", msg.code, msg.subcode) + msg.data
        return _frame(MessageType.NOTIFICATION, body)
    raise MalformedMessage(f"cannot encode {type(msg).__name__}")


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------


def _decode_nlri(family: Family, data: bytes, what: str) -> List[Prefix]:
    prefixes = []
    offset = 0
    while offset < len(data):
        length = data[offset]
        offset += 1
        if length > family.max_length:
            raise MalformedMessage(
                f"{what}: prefix length {length} invalid for {family.name}"
            )
        octets = (length + 7) // 8
        if offset + octets > len(data):
            raise TruncatedMessage(f"{what}: NLRI truncated")
        network = int.from_bytes(data[offset : offset + octets], "big")
        network <<= family.max_length - octets * 8
        offset += octets
        try:
            prefixes.append(Prefix(family, network, length))
        except Exception as exc:
            raise MalformedMessage(f"{what}: bad NLRI: {exc}") from exc
    return prefixes


def _decode_open(body: bytes) -> OpenMessage:
    if len(body) < 10:
        raise TruncatedMessage("OPEN body too short")
    version, wire_asn, hold_time, router_id, opt_len = struct.unpack_from(
        "!BHHIB", body, 0
    )
    if version != 4:
        raise UnsupportedFeature(f"BGP version {version}")
    offset = 10
    if offset + opt_len > len(body):
        raise TruncatedMessage("OPEN optional parameters truncated")
    capabilities: List[Capability] = []
    end = offset + opt_len
    while offset < end:
        if offset + 2 > end:
            raise TruncatedMessage("OPEN parameter header truncated")
        param_type, param_len = body[offset], body[offset + 1]
        offset += 2
        if offset + param_len > end:
            raise TruncatedMessage("OPEN parameter body truncated")
        payload = body[offset : offset + param_len]
        offset += param_len
        if param_type != 2:  # only capabilities are defined
            continue
        cap_offset = 0
        while cap_offset < len(payload):
            if cap_offset + 2 > len(payload):
                raise TruncatedMessage("capability header truncated")
            code, cap_len = payload[cap_offset], payload[cap_offset + 1]
            cap_offset += 2
            if cap_offset + cap_len > len(payload):
                raise TruncatedMessage("capability body truncated")
            capabilities.append(
                Capability(code, payload[cap_offset : cap_offset + cap_len])
            )
            cap_offset += cap_len
    asn = wire_asn
    for cap in capabilities:
        if cap.code == CapabilityCode.FOUR_OCTET_AS and len(cap.value) == 4:
            asn = struct.unpack("!I", cap.value)[0]
    return OpenMessage(
        asn=asn,
        hold_time=hold_time,
        router_id=router_id,
        capabilities=tuple(capabilities),
    )


@dataclass
class _RawAttributes:
    origin: Optional[Origin] = None
    as_path: Optional[AsPath] = None
    next_hop: Optional[int] = None
    med: Optional[int] = None
    local_pref: Optional[int] = None
    communities: frozenset = frozenset()
    atomic_aggregate: bool = False
    aggregator: Optional[Tuple[int, int]] = None
    mp_reach: Optional[Tuple[Family, int, List[Prefix]]] = None
    mp_unreach: Optional[Tuple[Family, List[Prefix]]] = None
    seen_types: set = field(default_factory=set)


def _decode_attribute(raw: _RawAttributes, attr_type: int, payload: bytes) -> None:
    if attr_type in raw.seen_types:
        raise MalformedMessage(f"duplicate path attribute {attr_type}")
    raw.seen_types.add(attr_type)
    if attr_type == AttrType.ORIGIN:
        if len(payload) != 1:
            raise MalformedMessage("ORIGIN length must be 1")
        try:
            raw.origin = Origin(payload[0])
        except ValueError as exc:
            raise MalformedMessage(f"bad ORIGIN {payload[0]}") from exc
    elif attr_type == AttrType.AS_PATH:
        raw.as_path = AsPath.decode(payload)
    elif attr_type == AttrType.NEXT_HOP:
        if len(payload) != 4:
            raise MalformedMessage("NEXT_HOP length must be 4")
        raw.next_hop = int.from_bytes(payload, "big")
    elif attr_type == AttrType.MULTI_EXIT_DISC:
        if len(payload) != 4:
            raise MalformedMessage("MED length must be 4")
        raw.med = struct.unpack("!I", payload)[0]
    elif attr_type == AttrType.LOCAL_PREF:
        if len(payload) != 4:
            raise MalformedMessage("LOCAL_PREF length must be 4")
        raw.local_pref = struct.unpack("!I", payload)[0]
    elif attr_type == AttrType.ATOMIC_AGGREGATE:
        if payload:
            raise MalformedMessage("ATOMIC_AGGREGATE must be empty")
        raw.atomic_aggregate = True
    elif attr_type == AttrType.AGGREGATOR:
        if len(payload) != 8:
            raise MalformedMessage("AGGREGATOR length must be 8")
        raw.aggregator = struct.unpack("!II", payload)
    elif attr_type == AttrType.COMMUNITIES:
        if len(payload) % 4:
            raise MalformedMessage("COMMUNITIES length not multiple of 4")
        raw.communities = frozenset(
            struct.unpack(f"!{len(payload) // 4}I", payload)
        )
    elif attr_type == AttrType.MP_REACH_NLRI:
        if len(payload) < 5:
            raise TruncatedMessage("MP_REACH_NLRI too short")
        afi, safi, nh_len = struct.unpack_from("!HBB", payload, 0)
        if safi != _SAFI_UNICAST:
            raise UnsupportedFeature(f"SAFI {safi}")
        try:
            family = Family(afi)
        except ValueError as exc:
            raise UnsupportedFeature(f"AFI {afi}") from exc
        offset = 4
        if offset + nh_len + 1 > len(payload):
            raise TruncatedMessage("MP_REACH_NLRI next hop truncated")
        # Link-local next hops may double the length; take the global one.
        base_len = min(nh_len, family.address_bytes)
        next_hop = int.from_bytes(payload[offset : offset + base_len], "big")
        offset += nh_len
        offset += 1  # reserved
        prefixes = _decode_nlri(family, payload[offset:], "MP_REACH_NLRI")
        raw.mp_reach = (family, next_hop, prefixes)
    elif attr_type == AttrType.MP_UNREACH_NLRI:
        if len(payload) < 3:
            raise TruncatedMessage("MP_UNREACH_NLRI too short")
        afi, safi = struct.unpack_from("!HB", payload, 0)
        if safi != _SAFI_UNICAST:
            raise UnsupportedFeature(f"SAFI {safi}")
        try:
            family = Family(afi)
        except ValueError as exc:
            raise UnsupportedFeature(f"AFI {afi}") from exc
        prefixes = _decode_nlri(family, payload[3:], "MP_UNREACH_NLRI")
        raw.mp_unreach = (family, prefixes)
    # Unknown optional attributes are silently ignored (RFC 4271 §5).


def _decode_update(body: bytes) -> UpdateMessage:
    if len(body) < 4:
        raise TruncatedMessage("UPDATE body too short")
    withdrawn_len = struct.unpack_from("!H", body, 0)[0]
    offset = 2
    if offset + withdrawn_len + 2 > len(body):
        raise TruncatedMessage("UPDATE withdrawn routes truncated")
    withdrawn_v4 = _decode_nlri(
        Family.IPV4, body[offset : offset + withdrawn_len], "withdrawn"
    )
    offset += withdrawn_len
    attrs_len = struct.unpack_from("!H", body, offset)[0]
    offset += 2
    if offset + attrs_len > len(body):
        raise TruncatedMessage("UPDATE attributes truncated")
    attr_data = body[offset : offset + attrs_len]
    offset += attrs_len
    nlri_v4 = _decode_nlri(Family.IPV4, body[offset:], "NLRI")

    raw = _RawAttributes()
    attr_offset = 0
    while attr_offset < len(attr_data):
        if attr_offset + 2 > len(attr_data):
            raise TruncatedMessage("attribute header truncated")
        flags = attr_data[attr_offset]
        attr_type = attr_data[attr_offset + 1]
        attr_offset += 2
        if flags & AttrFlag.EXTENDED_LENGTH:
            if attr_offset + 2 > len(attr_data):
                raise TruncatedMessage("extended attribute length truncated")
            attr_len = struct.unpack_from("!H", attr_data, attr_offset)[0]
            attr_offset += 2
        else:
            if attr_offset + 1 > len(attr_data):
                raise TruncatedMessage("attribute length truncated")
            attr_len = attr_data[attr_offset]
            attr_offset += 1
        if attr_offset + attr_len > len(attr_data):
            raise TruncatedMessage("attribute body truncated")
        payload = attr_data[attr_offset : attr_offset + attr_len]
        attr_offset += attr_len
        _decode_attribute(raw, attr_type, payload)

    # Assemble the message. IPv6 routes take precedence if MP attrs present.
    if raw.mp_reach is not None or raw.mp_unreach is not None:
        family = (
            raw.mp_reach[0] if raw.mp_reach is not None else raw.mp_unreach[0]
        )
        announced: Tuple[Prefix, ...] = ()
        attributes: Optional[PathAttributes] = None
        if raw.mp_reach is not None:
            _family, next_hop, prefixes = raw.mp_reach
            announced = tuple(prefixes)
            attributes = PathAttributes(
                origin=raw.origin if raw.origin is not None else Origin.IGP,
                as_path=raw.as_path or AsPath(),
                next_hop=(family, next_hop),
                med=raw.med,
                local_pref=raw.local_pref,
                communities=raw.communities,
                atomic_aggregate=raw.atomic_aggregate,
                aggregator=raw.aggregator,
            )
        withdrawn = tuple(raw.mp_unreach[1]) if raw.mp_unreach else ()
        return UpdateMessage(
            family=family,
            withdrawn=withdrawn,
            announced=announced,
            attributes=attributes,
        )

    attributes = None
    if nlri_v4:
        if raw.origin is None or raw.as_path is None or raw.next_hop is None:
            raise MalformedMessage(
                "announcement missing mandatory attributes"
            )
        attributes = PathAttributes(
            origin=raw.origin,
            as_path=raw.as_path,
            next_hop=(Family.IPV4, raw.next_hop),
            med=raw.med,
            local_pref=raw.local_pref,
            communities=raw.communities,
            atomic_aggregate=raw.atomic_aggregate,
            aggregator=raw.aggregator,
        )
    return UpdateMessage(
        family=Family.IPV4,
        withdrawn=tuple(withdrawn_v4),
        announced=tuple(nlri_v4),
        attributes=attributes,
    )


def decode_message(data: bytes) -> Tuple[BgpMessage, int]:
    """Decode one message from *data*, returning (message, bytes consumed)."""
    if len(data) < HEADER_LEN:
        raise TruncatedMessage("BGP header truncated")
    if data[:16] != MARKER:
        raise MalformedMessage("bad BGP marker")
    length, msg_type = struct.unpack_from("!HB", data, 16)
    if length < HEADER_LEN or length > MAX_MESSAGE_LEN:
        raise MalformedMessage(f"bad BGP message length {length}")
    if len(data) < length:
        raise TruncatedMessage("BGP message body truncated")
    body = data[HEADER_LEN:length]
    if msg_type == MessageType.OPEN:
        return _decode_open(body), length
    if msg_type == MessageType.UPDATE:
        return _decode_update(body), length
    if msg_type == MessageType.KEEPALIVE:
        if body:
            raise MalformedMessage("KEEPALIVE with body")
        return KeepaliveMessage(), length
    if msg_type == MessageType.NOTIFICATION:
        if len(body) < 2:
            raise TruncatedMessage("NOTIFICATION too short")
        return (
            NotificationMessage(code=body[0], subcode=body[1], data=body[2:]),
            length,
        )
    raise MalformedMessage(f"unknown BGP message type {msg_type}")


def decode_stream(data: bytes) -> Tuple[List[BgpMessage], bytes]:
    """Decode every complete message in *data*.

    Returns the decoded messages and any trailing partial bytes, which the
    caller should prepend to the next read — exactly how a TCP-based
    speaker consumes its receive buffer.
    """
    messages: List[BgpMessage] = []
    offset = 0
    while True:
        try:
            message, consumed = decode_message(data[offset:])
        except TruncatedMessage:
            break
        messages.append(message)
        offset += consumed
        if offset >= len(data):
            break
    return messages, data[offset:]
