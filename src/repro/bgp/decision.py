"""The BGP decision process (RFC 4271 §9.1, with common vendor behaviours).

Edge Fabric depends on the decision process twice over:

1. The *projection* step must predict which route each PR would pick for
   each prefix if the controller did nothing — that is exactly "run the
   decision process over the Adj-RIB-Ins".
2. The *allocator* walks a prefix's routes in decision-process order when
   choosing a detour target ("the best alternate is the next route BGP
   would have chosen").

Steps implemented, in order:

1. Highest LOCAL_PREF.
2. Shortest AS_PATH (AS_SET counts as 1).
3. Lowest ORIGIN (IGP < EGP < INCOMPLETE).
4. Lowest MED, compared only between routes from the same neighbor AS
   (unless ``always_compare_med``); missing MED treated as 0.
5. eBGP over iBGP.
6. Lowest IGP cost to the next hop.
7. Oldest route (stability; optional, on by default like most vendors).
8. Lowest peer address / session identity as the final deterministic
   tiebreak.

MED and transitivity
--------------------

Because step 4 applies only between same-neighbor-AS routes, the *pairwise*
relation is famously not transitive (the "MED oscillation" problem).  A
controller, unlike a router, needs a stable total order, so ranking uses
the **deterministic-MED** construction: routes are grouped by neighbor AS,
each route's MED is converted to its rank *within its group*, and that
group-relative rank is used as the step-4 key.  Within a group this is
exactly the MED rule; across groups it deterministically demotes routes
already beaten by a same-AS sibling — the same idea as Cisco's
``bgp deterministic-med``.  :func:`compare_routes` keeps the literal
pairwise semantics for callers that want router-faithful behaviour.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .route import Route

__all__ = [
    "DecisionConfig",
    "DEFAULT_CONFIG",
    "compare_routes",
    "best_route",
    "rank_routes",
]


@dataclass(frozen=True)
class DecisionConfig:
    """Knobs for the decision process.

    ``prefer_oldest`` applies the "prefer the oldest external route"
    stabilizer; experiments that need rankings independent of arrival
    time can turn it off.
    """

    always_compare_med: bool = False
    prefer_oldest: bool = True


DEFAULT_CONFIG = DecisionConfig()


def compare_routes(
    a: Route, b: Route, config: DecisionConfig = DEFAULT_CONFIG
) -> int:
    """Pairwise three-way comparison: negative if *a* beats *b*.

    This is the router-faithful relation; see the module docstring for why
    it is not transitive when MEDs are present.  Use :func:`rank_routes`
    for a total order.
    """
    # 1. Highest LOCAL_PREF wins.
    if a.local_pref != b.local_pref:
        return -1 if a.local_pref > b.local_pref else 1
    # 2. Shortest AS_PATH wins.
    a_len, b_len = a.as_path_length, b.as_path_length
    if a_len != b_len:
        return -1 if a_len < b_len else 1
    # 3. Lowest ORIGIN wins.
    if a.attributes.origin != b.attributes.origin:
        return -1 if a.attributes.origin < b.attributes.origin else 1
    # 4. Lowest MED wins, same-neighbor-AS only unless configured otherwise.
    if config.always_compare_med or (
        a.next_hop_asn is not None and a.next_hop_asn == b.next_hop_asn
    ):
        a_med = a.attributes.med or 0
        b_med = b.attributes.med or 0
        if a_med != b_med:
            return -1 if a_med < b_med else 1
    return _compare_tail(a, b, config)


def _compare_tail(a: Route, b: Route, config: DecisionConfig) -> int:
    """Steps 5-8, shared by the pairwise and key-based paths."""
    # 5. eBGP over iBGP.
    if a.is_ebgp != b.is_ebgp:
        return -1 if a.is_ebgp else 1
    # 6. Lowest IGP cost to next hop.
    if a.igp_cost != b.igp_cost:
        return -1 if a.igp_cost < b.igp_cost else 1
    # 7. Oldest route.
    if config.prefer_oldest and a.learned_at != b.learned_at:
        return -1 if a.learned_at < b.learned_at else 1
    # 8. Deterministic final tiebreak on the session identity.
    a_key = (a.source.address, a.source.router, a.source.name)
    b_key = (b.source.address, b.source.router, b.source.name)
    if a_key != b_key:
        return -1 if a_key < b_key else 1
    return 0


def _med_ranks(
    routes: Sequence[Route], config: DecisionConfig
) -> Dict[int, int]:
    """Deterministic-MED step-4 key per route (by index into *routes*).

    Routes are grouped by neighbor AS (or one global group when
    ``always_compare_med``); within a group the key is the rank of the
    route's MED among the group's distinct MED values.
    """
    groups: Dict[object, List[int]] = defaultdict(list)
    for index, route in enumerate(routes):
        if config.always_compare_med:
            group_key: object = "all"
        else:
            group_key = (
                route.next_hop_asn
                if route.next_hop_asn is not None
                else ("session", route.source.name)
            )
        groups[group_key].append(index)
    ranks: Dict[int, int] = {}
    for members in groups.values():
        meds = sorted({routes[i].attributes.med or 0 for i in members})
        position = {med: rank for rank, med in enumerate(meds)}
        for i in members:
            ranks[i] = position[routes[i].attributes.med or 0]
    return ranks


def _sort_key(route: Route, med_rank: int, config: DecisionConfig) -> Tuple:
    key = [
        -route.local_pref,
        route.as_path_length,
        int(route.attributes.origin),
        med_rank,
        0 if route.is_ebgp else 1,
        route.igp_cost,
    ]
    if config.prefer_oldest:
        key.append(route.learned_at)
    key.extend(
        (route.source.address, route.source.router, route.source.name)
    )
    # Last-resort tiebreak so the ranking is a deterministic function of
    # the route *set* even for inputs no real RIB would hold (two routes
    # from one session differing only in attribute details).  The tail
    # must distinguish every pair of unequal routes — a key collision
    # would let the stable sort leak input order — so it spells out each
    # remaining field, keeping unset MED/LOCAL_PREF distinct from their
    # effective defaults.
    attrs = route.attributes
    key.extend(
        (
            str(attrs.as_path),
            attrs.med is not None,
            attrs.med or 0,
            attrs.local_pref is not None,
            tuple(attrs.sorted_communities()),
            route.learned_at,
            int(route.prefix.family),
            route.prefix.network,
            route.prefix.length,
            int(attrs.next_hop[0]),
            attrs.next_hop[1],
            attrs.atomic_aggregate,
            attrs.aggregator is not None,
            attrs.aggregator or (0, 0),
            int(route.source.family),
        )
    )
    return tuple(key)


def rank_routes(
    routes: Sequence[Route], config: DecisionConfig = DEFAULT_CONFIG
) -> List[Route]:
    """All routes in decision order, most preferred first (total order).

    ``rank_routes(rs)[0] == best_route(rs)``, and ``rank_routes(rs)[1:]``
    is the allocator's detour-candidate order.  The result depends only on
    the *set* of routes, never on input order.
    """
    if len(routes) <= 1:
        return list(routes)
    ranks = _med_ranks(routes, config)
    indexed = sorted(
        range(len(routes)),
        key=lambda i: _sort_key(routes[i], ranks[i], config),
    )
    return [routes[i] for i in indexed]


def best_route(
    routes: Sequence[Route], config: DecisionConfig = DEFAULT_CONFIG
) -> Optional[Route]:
    """The route the decision process selects, or None if empty."""
    if not routes:
        return None
    if len(routes) == 1:
        return routes[0]
    if len(routes) == 2:
        # Pairwise comparison equals the deterministic-MED ranking for
        # two routes: with one pair there is either one MED group
        # (identical comparison) or two singleton groups (step 4 is a
        # tie both ways).  This is the RIB's per-update hot path.
        verdict = compare_routes(routes[0], routes[1], config)
        if verdict < 0:
            return routes[0]
        if verdict > 0:
            return routes[1]
        # Session-identity tie (never happens for routes keyed by
        # source in a RIB): fall through to the total order.
    return rank_routes(routes, config)[0]
