"""Peering session descriptors.

Edge Fabric's PoPs connect to the Internet through four kinds of egress
(§2 of the paper), and the BGP import policy ranks routes by that kind:

- ``TRANSIT``  — paid providers carrying routes to the whole Internet,
- ``PRIVATE``  — dedicated private network interconnects (PNIs) to peers,
- ``PUBLIC``   — bilateral sessions across a shared IXP fabric,
- ``ROUTE_SERVER`` — multilateral sessions via an IXP route server.

A :class:`PeerDescriptor` identifies one BGP session on one peering router
and the egress interface its traffic would use; routes carry their
descriptor so the controller can map any route to the interface it would
load.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..netbase.addr import Family
from ..netbase.asn import validate_asn

__all__ = ["PeerType", "PeerDescriptor"]


class PeerType(Enum):
    """Kind of egress a BGP session provides, in BGP-policy preference
    order (most preferred first)."""

    PRIVATE = "private"
    PUBLIC = "public"
    ROUTE_SERVER = "route_server"
    TRANSIT = "transit"
    INTERNAL = "internal"  # iBGP, e.g. the Edge Fabric injector

    @property
    def policy_rank(self) -> int:
        """0 = most preferred by default BGP policy (lower is better)."""
        order = {
            PeerType.PRIVATE: 0,
            PeerType.PUBLIC: 1,
            PeerType.ROUTE_SERVER: 2,
            PeerType.TRANSIT: 3,
            PeerType.INTERNAL: 4,
        }
        return order[self]

    @property
    def is_peering(self) -> bool:
        """True for settlement-free peering (everything but transit/iBGP)."""
        return self in (
            PeerType.PRIVATE,
            PeerType.PUBLIC,
            PeerType.ROUTE_SERVER,
        )


@dataclass(frozen=True, order=True)
class PeerDescriptor:
    """Identity of one BGP session, as seen from our side.

    ``interface`` names the egress interface on ``router`` that traffic
    following this session's routes would use.  Public-peering and
    route-server sessions at the same IXP share one physical interface,
    which is exactly the capacity-sharing the allocator must model.
    """

    router: str  # peering router name, e.g. "pop0-pr1"
    peer_asn: int  # neighbor AS number
    peer_type: PeerType
    interface: str  # egress interface name on the router
    address: int = 0  # neighbor address (for decision-process tiebreak)
    family: Family = Family.IPV4
    session_name: str = ""  # disambiguator when one AS has many sessions

    def __post_init__(self) -> None:
        validate_asn(self.peer_asn)

    @property
    def name(self) -> str:
        """Stable human-readable session id."""
        suffix = f":{self.session_name}" if self.session_name else ""
        return (
            f"{self.router}/{self.interface}/"
            f"AS{self.peer_asn}/{self.peer_type.value}{suffix}"
        )

    @property
    def is_ebgp(self) -> bool:
        return self.peer_type is not PeerType.INTERNAL

    def __str__(self) -> str:
        return self.name
