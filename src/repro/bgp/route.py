"""The Route object: a prefix, its path attributes, and where it came from.

Routes are the currency of the whole system — the BMP collector hands them
to the controller, the decision process ranks them, the allocator picks
among them, and the injector re-announces them with boosted preference.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..netbase.addr import Prefix
from .attributes import PathAttributes
from .communities import INJECTED
from .peering import PeerDescriptor, PeerType

__all__ = ["Route"]


@dataclass(frozen=True)
class Route:
    """One path to one destination prefix, learned from one peer.

    ``learned_at`` is simulation time (seconds); the decision process uses
    it only for the "prefer oldest" stabilizer between otherwise-equal
    external routes, and the controller uses it for staleness checks.
    """

    prefix: Prefix
    attributes: PathAttributes
    source: PeerDescriptor
    learned_at: float = 0.0
    igp_cost: int = 0

    @property
    def peer_type(self) -> PeerType:
        return self.source.peer_type

    @property
    def interface(self) -> str:
        """Egress interface this route's traffic would use."""
        return self.source.interface

    @property
    def router(self) -> str:
        return self.source.router

    @property
    def is_ebgp(self) -> bool:
        return self.source.is_ebgp

    @property
    def is_injected(self) -> bool:
        """True for routes announced by the Edge Fabric injector."""
        return self.attributes.has_community(INJECTED)

    @property
    def local_pref(self) -> int:
        return self.attributes.effective_local_pref

    @property
    def as_path_length(self) -> int:
        return self.attributes.as_path.length()

    @property
    def next_hop_asn(self) -> Optional[int]:
        return self.attributes.as_path.next_hop_asn

    def with_attributes(self, attributes: PathAttributes) -> "Route":
        return replace(self, attributes=attributes)

    def with_local_pref(self, local_pref: int) -> "Route":
        return replace(
            self, attributes=self.attributes.with_local_pref(local_pref)
        )

    def key(self) -> tuple:
        """Identity of this route within a RIB: (prefix, session)."""
        return (self.prefix, self.source)

    def __str__(self) -> str:
        return (
            f"{self.prefix} via {self.source.name} "
            f"lp={self.local_pref} path=[{self.attributes.as_path}]"
        )
