"""BGP session finite state machine (RFC 4271 §8, simplified but faithful).

The simulator drives sessions with an explicit clock, so the FSM exposes a
``tick(now)`` that fires its timers (connect retry, hold, keepalive) and
returns the messages the session wants to send.  Transport is abstracted
to "the TCP connection came up / went down" events; the in-memory link
layer of the speaker provides those.

States and the transitions implemented:

- IDLE         --start-->                        CONNECT
- CONNECT      --tcp up-->   (send OPEN)         OPEN_SENT
- CONNECT      --retry expired-->                ACTIVE
- ACTIVE       --tcp up-->   (send OPEN)         OPEN_SENT
- OPEN_SENT    --OPEN ok-->  (send KEEPALIVE)    OPEN_CONFIRM
- OPEN_CONFIRM --KEEPALIVE-->                    ESTABLISHED
- any          --NOTIFICATION / hold expiry / stop--> IDLE
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from ..netbase.errors import SessionError
from .messages import (
    BgpMessage,
    KeepaliveMessage,
    NotificationCode,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
)

__all__ = ["SessionState", "FsmEvent", "SessionFsm"]


class SessionState(Enum):
    IDLE = "idle"
    CONNECT = "connect"
    ACTIVE = "active"
    OPEN_SENT = "open_sent"
    OPEN_CONFIRM = "open_confirm"
    ESTABLISHED = "established"


class FsmEvent(Enum):
    MANUAL_START = "manual_start"
    MANUAL_STOP = "manual_stop"
    TCP_ESTABLISHED = "tcp_established"
    TCP_FAILED = "tcp_failed"


_CONNECT_RETRY_SECS = 30.0


@dataclass
class SessionFsm:
    """FSM for one session.  ``local_open`` is the OPEN we send."""

    local_open: OpenMessage
    state: SessionState = SessionState.IDLE
    remote_open: Optional[OpenMessage] = None
    hold_time: float = 0.0
    _last_received: float = 0.0
    _last_keepalive_sent: float = 0.0
    _connect_deadline: float = 0.0
    _outbox: List[BgpMessage] = field(default_factory=list)

    # -- inspection ----------------------------------------------------------

    @property
    def is_established(self) -> bool:
        return self.state is SessionState.ESTABLISHED

    @property
    def keepalive_interval(self) -> float:
        return self.hold_time / 3.0 if self.hold_time else 0.0

    def take_outbox(self) -> List[BgpMessage]:
        """Messages the FSM wants transmitted, draining the queue."""
        out, self._outbox = self._outbox, []
        return out

    # -- administrative events ---------------------------------------------------

    def handle_event(self, event: FsmEvent, now: float) -> None:
        if event is FsmEvent.MANUAL_START:
            if self.state is SessionState.IDLE:
                self.state = SessionState.CONNECT
                self._connect_deadline = now + _CONNECT_RETRY_SECS
        elif event is FsmEvent.MANUAL_STOP:
            if self.state is not SessionState.IDLE:
                self._outbox.append(
                    NotificationMessage(NotificationCode.CEASE)
                )
            self._reset()
        elif event is FsmEvent.TCP_ESTABLISHED:
            if self.state in (SessionState.CONNECT, SessionState.ACTIVE):
                self._outbox.append(self.local_open)
                self.state = SessionState.OPEN_SENT
                self._last_received = now
        elif event is FsmEvent.TCP_FAILED:
            if self.state is not SessionState.IDLE:
                self.state = SessionState.ACTIVE
                self._connect_deadline = now + _CONNECT_RETRY_SECS

    # -- message handling -----------------------------------------------------------

    def handle_message(self, message: BgpMessage, now: float) -> bool:
        """Process an inbound message.

        Returns True if the session just became established.  UPDATEs are
        *not* consumed here — the speaker routes them to its RIB — but the
        FSM validates that they only arrive in ESTABLISHED and refreshes
        the hold timer.
        """
        self._last_received = now
        if isinstance(message, NotificationMessage):
            self._reset()
            return False
        if isinstance(message, OpenMessage):
            if self.state is not SessionState.OPEN_SENT:
                self._send_fsm_error()
                return False
            self.remote_open = message
            self.hold_time = float(
                min(self.local_open.hold_time, message.hold_time)
            )
            self._outbox.append(KeepaliveMessage())
            self._last_keepalive_sent = now
            self.state = SessionState.OPEN_CONFIRM
            return False
        if isinstance(message, KeepaliveMessage):
            if self.state is SessionState.OPEN_CONFIRM:
                self.state = SessionState.ESTABLISHED
                return True
            if self.state is SessionState.ESTABLISHED:
                return False
            self._send_fsm_error()
            return False
        if isinstance(message, UpdateMessage):
            if self.state is not SessionState.ESTABLISHED:
                self._send_fsm_error()
                raise SessionError(
                    f"UPDATE received in state {self.state.value}"
                )
            return False
        raise SessionError(f"unhandled message {type(message).__name__}")

    # -- timers -------------------------------------------------------------------------

    def tick(self, now: float) -> None:
        """Fire any expired timers."""
        if self.state is SessionState.ESTABLISHED and self.hold_time:
            if now - self._last_received > self.hold_time:
                self._outbox.append(
                    NotificationMessage(NotificationCode.HOLD_TIMER_EXPIRED)
                )
                self._reset()
                return
            if now - self._last_keepalive_sent >= self.keepalive_interval:
                self._outbox.append(KeepaliveMessage())
                self._last_keepalive_sent = now
        elif self.state is SessionState.CONNECT:
            if now >= self._connect_deadline:
                self.state = SessionState.ACTIVE

    # -- internals -------------------------------------------------------------------------

    def _send_fsm_error(self) -> None:
        self._outbox.append(NotificationMessage(NotificationCode.FSM_ERROR))
        self._reset()

    def _reset(self) -> None:
        self.state = SessionState.IDLE
        self.remote_open = None
        self.hold_time = 0.0
