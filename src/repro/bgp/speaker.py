"""A BGP speaker: sessions + policies + RIBs, exchanging wire bytes.

This is the model of a peering router's BGP process.  It is transport-
agnostic: callers (the in-memory link layer, tests, the injector) push raw
BGP byte strings into :meth:`BgpSpeaker.receive_wire` and collect outbound
byte strings from :meth:`BgpSpeaker.take_output`.  Everything that crosses
a session boundary is real wire format, so the BMP mirror can forward the
exact PDUs it saw, as production BMP does.

Observers can subscribe to route events (used by the BMP station and by
the dataplane FIB) via :meth:`subscribe`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from ..netbase.addr import Family, Prefix
from ..netbase.errors import SessionError
from .attributes import PathAttributes
from .decision import DecisionConfig, DEFAULT_CONFIG
from .fsm import FsmEvent, SessionFsm, SessionState
from .messages import (
    BgpMessage,
    KeepaliveMessage,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
    decode_stream,
    encode_message,
)
from .peering import PeerDescriptor
from .policy import RoutePolicy
from .rib import AdjRibIn, LocRib, RibChange
from .route import Route

__all__ = ["RouteEvent", "Session", "BgpSpeaker"]

#: Callback signature for route observers: (speaker, event).
Observer = Callable[["BgpSpeaker", "RouteEvent"], None]


@dataclass(frozen=True)
class RouteEvent:
    """A post-policy routing event on one session."""

    peer: PeerDescriptor
    prefix: Prefix
    route: Optional[Route]  # None for withdrawals
    withdrawn: bool
    rib_change: RibChange
    raw_update: bytes  # the wire UPDATE that caused this event


@dataclass
class Session:
    """One configured neighbor on this speaker."""

    peer: PeerDescriptor
    fsm: SessionFsm
    adj_rib_in: AdjRibIn
    import_policy: Optional[RoutePolicy] = None
    rx_buffer: bytes = b""
    tx_queue: List[bytes] = field(default_factory=list)

    @property
    def is_established(self) -> bool:
        return self.fsm.is_established


class BgpSpeaker:
    """A router's BGP process: N sessions feeding one Loc-RIB."""

    def __init__(
        self,
        name: str,
        asn: int,
        router_id: int,
        hold_time: int = 90,
        decision_config: DecisionConfig = DEFAULT_CONFIG,
    ) -> None:
        self.name = name
        self.asn = asn
        self.router_id = router_id
        self.hold_time = hold_time
        self.loc_rib = LocRib(decision_config)
        self._sessions: Dict[str, Session] = {}
        self._observers: List[Observer] = []
        self._clock = 0.0

    # -- session management ---------------------------------------------------

    def add_session(
        self,
        peer: PeerDescriptor,
        import_policy: Optional[RoutePolicy] = None,
    ) -> Session:
        if peer.name in self._sessions:
            raise SessionError(f"duplicate session {peer.name}")
        local_open = OpenMessage.standard(
            self.asn, self.router_id, self.hold_time
        )
        session = Session(
            peer=peer,
            fsm=SessionFsm(local_open),
            adj_rib_in=AdjRibIn(peer),
            import_policy=import_policy,
        )
        self._sessions[peer.name] = session
        return session

    def session(self, peer_name: str) -> Session:
        try:
            return self._sessions[peer_name]
        except KeyError:
            raise SessionError(f"no session named {peer_name}") from None

    def sessions(self) -> Iterable[Session]:
        return self._sessions.values()

    def start_session(self, peer_name: str) -> None:
        session = self.session(peer_name)
        session.fsm.handle_event(FsmEvent.MANUAL_START, self._clock)
        self._drain_fsm(session)

    def connect_session(self, peer_name: str) -> None:
        """Signal that the underlying transport came up."""
        session = self.session(peer_name)
        session.fsm.handle_event(FsmEvent.TCP_ESTABLISHED, self._clock)
        self._drain_fsm(session)

    def stop_session(self, peer_name: str) -> List[RibChange]:
        """Administratively stop a session, flushing its routes."""
        session = self.session(peer_name)
        session.fsm.handle_event(FsmEvent.MANUAL_STOP, self._clock)
        self._drain_fsm(session)
        return self._flush_session(session)

    def _flush_session(self, session: Session) -> List[RibChange]:
        """Drop a downed session's routes, notifying observers.

        Observers (the BMP exporter, the PoP routing view) must see the
        withdrawals — a session going down changes routing exactly as
        explicit withdrawals would.  Production BMP conveys this as a
        PEER_DOWN; here each flushed route becomes a withdrawal event.
        """
        changes = []
        for route in session.adj_rib_in.clear():
            change = self.loc_rib.withdraw(route.prefix, session.peer)
            changes.append(change)
            self._notify(
                RouteEvent(
                    peer=session.peer,
                    prefix=route.prefix,
                    route=None,
                    withdrawn=True,
                    rib_change=change,
                    raw_update=b"",
                )
            )
        return changes

    # -- observers ---------------------------------------------------------------

    def subscribe(self, observer: Observer) -> None:
        self._observers.append(observer)

    def _notify(self, event: RouteEvent) -> None:
        for observer in self._observers:
            observer(self, event)

    # -- time ----------------------------------------------------------------------

    def tick(self, now: float) -> None:
        """Advance the clock; fire per-session timers."""
        self._clock = now
        for session in self._sessions.values():
            was_established = session.is_established
            session.fsm.tick(now)
            self._drain_fsm(session)
            if was_established and not session.is_established:
                self._flush_session(session)

    @property
    def clock(self) -> float:
        return self._clock

    # -- wire I/O -----------------------------------------------------------------------

    def receive_wire(self, peer_name: str, data: bytes) -> List[RouteEvent]:
        """Feed received bytes into a session; returns route events."""
        session = self.session(peer_name)
        session.rx_buffer += data
        messages, session.rx_buffer = decode_stream(session.rx_buffer)
        events: List[RouteEvent] = []
        for message in messages:
            events.extend(self._handle_message(session, message))
        return events

    def take_output(self, peer_name: str) -> bytes:
        """Drain queued outbound bytes for a session."""
        session = self.session(peer_name)
        out = b"".join(session.tx_queue)
        session.tx_queue.clear()
        return out

    def send_message(self, peer_name: str, message: BgpMessage) -> None:
        """Queue an arbitrary message for transmission (tests, injector)."""
        self.session(peer_name).tx_queue.append(encode_message(message))

    def _drain_fsm(self, session: Session) -> None:
        for message in session.fsm.take_outbox():
            session.tx_queue.append(encode_message(message))

    def _handle_message(
        self, session: Session, message: BgpMessage
    ) -> List[RouteEvent]:
        events: List[RouteEvent] = []
        if isinstance(message, UpdateMessage):
            session.fsm.handle_message(message, self._clock)
            self._drain_fsm(session)
            events.extend(self._apply_update(session, message))
        else:
            session.fsm.handle_message(message, self._clock)
            self._drain_fsm(session)
            if isinstance(message, NotificationMessage):
                self._flush_session(session)
        return events

    # -- route processing -------------------------------------------------------------------

    def _apply_update(
        self, session: Session, update: UpdateMessage
    ) -> List[RouteEvent]:
        raw = encode_message(update)
        events: List[RouteEvent] = []
        for prefix in update.withdrawn:
            session.adj_rib_in.withdraw(prefix)
            change = self.loc_rib.withdraw(prefix, session.peer)
            events.append(
                RouteEvent(
                    peer=session.peer,
                    prefix=prefix,
                    route=None,
                    withdrawn=True,
                    rib_change=change,
                    raw_update=raw,
                )
            )
        if update.announced:
            assert update.attributes is not None
            for prefix in update.announced:
                route = Route(
                    prefix=prefix,
                    attributes=update.attributes,
                    source=session.peer,
                    learned_at=self._clock,
                )
                accepted = self._import(session, route)
                if accepted is None:
                    # Policy rejection is an implicit withdraw of any
                    # previously-accepted route for this prefix.
                    session.adj_rib_in.withdraw(prefix)
                    change = self.loc_rib.withdraw(prefix, session.peer)
                    events.append(
                        RouteEvent(
                            peer=session.peer,
                            prefix=prefix,
                            route=None,
                            withdrawn=True,
                            rib_change=change,
                            raw_update=raw,
                        )
                    )
                    continue
                session.adj_rib_in.update(accepted)
                change = self.loc_rib.update(accepted)
                events.append(
                    RouteEvent(
                        peer=session.peer,
                        prefix=prefix,
                        route=accepted,
                        withdrawn=False,
                        rib_change=change,
                        raw_update=raw,
                    )
                )
        for event in events:
            self._notify(event)
        return events

    def _import(self, session: Session, route: Route) -> Optional[Route]:
        if session.import_policy is None:
            return route
        return session.import_policy.apply(route)

    # -- convenience for tests and the link layer ------------------------------------------

    def establish_directly(self, peer_name: str) -> None:
        """Force a session straight to ESTABLISHED.

        Simulation setup helper: large scenarios establish hundreds of
        sessions, and replaying the full OPEN/KEEPALIVE handshake for each
        adds nothing once the FSM itself is unit-tested.
        """
        session = self.session(peer_name)
        session.fsm.state = SessionState.ESTABLISHED
        session.fsm.hold_time = float(self.hold_time)
        session.fsm._last_received = self._clock

    def inject_update(
        self,
        peer_name: str,
        prefixes: Iterable[Prefix],
        attributes: PathAttributes,
        family: Optional[Family] = None,
    ) -> List[RouteEvent]:
        """Encode an UPDATE as if *peer_name* announced it, and receive it.

        Goes through the real codec, so tests exercise the wire path.
        """
        prefixes = tuple(prefixes)
        fam = family or (prefixes[0].family if prefixes else Family.IPV4)
        update = UpdateMessage(
            family=fam, announced=prefixes, attributes=attributes
        )
        return self.receive_wire(peer_name, encode_message(update))

    def inject_withdraw(
        self,
        peer_name: str,
        prefixes: Iterable[Prefix],
        family: Optional[Family] = None,
    ) -> List[RouteEvent]:
        prefixes = tuple(prefixes)
        fam = family or (prefixes[0].family if prefixes else Family.IPV4)
        update = UpdateMessage(family=fam, withdrawn=prefixes)
        return self.receive_wire(peer_name, encode_message(update))
