"""Build a wired PoP: entities, BGP speakers, feeds, BMP registry.

:func:`build_pop` turns a :class:`PopSpec` plus an
:class:`~repro.topology.internet.InternetTopology` into a fully wired
simulation object: one :class:`~repro.bgp.speaker.BgpSpeaker` per peering
router, every peering session configured with the standard import policy,
and every peer's announcements replayed through the real BGP wire codec so
the RIBs hold exactly what production routers would hold.

Session placement mirrors the paper's PoP design:

- every transit provider connects to *every* PR (transit is the safety
  net, so it is made redundant),
- each private interconnect (PNI) gets its own dedicated interface on one
  PR,
- all public-exchange sessions — bilateral and route-server — share the
  PoP's IXP-facing interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..bgp.attributes import AsPath, PathAttributes
from ..bgp.peering import PeerDescriptor, PeerType
from ..bgp.policy import standard_import_policy
from ..bgp.speaker import BgpSpeaker
from ..bmp.collector import PeerRegistry
from ..netbase.addr import Family, Prefix
from ..netbase.errors import TopologyError
from ..netbase.units import Rate, gbps
from .entities import Interface, InterfaceKey as InterfaceKeyT, PoP
from .internet import InternetTopology

__all__ = [
    "PopSpec",
    "WiredPop",
    "build_pop",
    "provision_against_demand",
]


@dataclass(frozen=True)
class PopSpec:
    """Parameters shaping one PoP.

    Private-interconnect capacity is *provisioned*, not random: peers
    build PNIs sized against the traffic they exchange.  When
    ``expected_peak`` is set, each private interface's capacity is the
    peer's expected share of peak demand (proportional to its customer
    cone) times a headroom factor — with ``tight_peer_count`` peers
    deliberately under-provisioned, modeling the paper's observation
    that demand growth outpaces capacity augments on some links.  With
    ``expected_peak=None``, capacities fall back to the uniform random
    range (useful for unit tests).
    """

    name: str
    seed: int = 0
    local_asn: int = 64600
    router_count: int = 2
    transit_count: int = 2
    private_peer_count: int = 8
    public_peer_count: int = 24
    route_server_member_count: int = 40
    transit_capacity: Rate = gbps(100)
    private_capacity_min: Rate = gbps(10)
    private_capacity_max: Rate = gbps(40)
    ixp_capacity: Rate = gbps(80)
    #: Peak PoP egress demand the capacities are provisioned against.
    expected_peak: Optional[Rate] = None
    #: Share of demand whose preferred egress is a private peer.
    private_preferred_share: float = 0.85
    #: Headroom factor range for well-provisioned private peers.
    private_headroom: Tuple[float, float] = (1.3, 1.8)
    #: Peers whose capacity lags demand (the overload-prone links).
    tight_peer_count: int = 2
    tight_headroom: Tuple[float, float] = (0.7, 0.92)

    def __post_init__(self) -> None:
        if self.router_count < 1:
            raise TopologyError("a PoP needs at least one router")
        if self.transit_count < 1:
            raise TopologyError(
                "a PoP needs transit (the alternate of last resort)"
            )
        if self.tight_peer_count > self.private_peer_count:
            raise TopologyError(
                "cannot have more tight peers than private peers"
            )


@dataclass
class WiredPop:
    """A PoP plus its live BGP machinery, ready for simulation."""

    pop: PoP
    internet: InternetTopology
    speakers: Dict[str, BgpSpeaker]
    registry: PeerRegistry
    #: Prefixes announced by each session (by session name).
    feeds: Dict[str, List[Prefix]] = field(default_factory=dict)
    #: ASes picked as private peers / public peers / RS members.
    private_peer_asns: List[int] = field(default_factory=list)
    public_peer_asns: List[int] = field(default_factory=list)
    route_server_member_asns: List[int] = field(default_factory=list)

    def speaker_of(self, router: str) -> BgpSpeaker:
        try:
            return self.speakers[router]
        except KeyError:
            raise TopologyError(f"unknown router {router}") from None

    def popular_prefixes(self) -> List[Prefix]:
        """Prefixes inside private peers' cones — the high-volume set.

        ASes peer privately *because* they exchange lots of traffic, so
        the demand model weights these up.
        """
        seen = {}
        for asn in self.private_peer_asns:
            for prefix in self.internet.cone_prefixes(asn):
                seen[prefix] = True
        return list(seen)


def _session_address(counter: int) -> int:
    """Unique synthetic neighbor addresses out of 10.128.0.0/9."""
    return (10 << 24) | (1 << 23) | counter


def build_pop(
    spec: PopSpec, internet: InternetTopology
) -> WiredPop:
    """Construct and wire a PoP against a synthetic Internet."""
    rng = np.random.default_rng(spec.seed)
    pop = PoP(spec.name, spec.local_asn)
    speakers: Dict[str, BgpSpeaker] = {}
    registry = PeerRegistry()

    for index in range(spec.router_count):
        router_name = f"{spec.name}-pr{index}"
        pop.add_router(router_name, router_id=index + 1)
        speakers[router_name] = BgpSpeaker(
            name=router_name,
            asn=spec.local_asn,
            router_id=index + 1,
        )

    router_names = list(pop.routers)
    wired = WiredPop(
        pop=pop, internet=internet, speakers=speakers, registry=registry
    )

    # -- pick the peer ASes, biggest cones first -----------------------------
    tier2s_by_size = sorted(
        internet.tier2s,
        key=lambda asn: (-len(internet.cone_prefixes(asn)), asn),
    )
    stubs_by_size = sorted(
        internet.stubs,
        key=lambda asn: (-len(internet.prefixes_of(asn)), asn),
    )
    private_peers = tier2s_by_size[: spec.private_peer_count]
    if len(private_peers) < spec.private_peer_count:
        private_peers += stubs_by_size[
            : spec.private_peer_count - len(private_peers)
        ]
    taken = set(private_peers)
    public_peers = [
        asn for asn in tier2s_by_size + stubs_by_size if asn not in taken
    ][: spec.public_peer_count]
    taken.update(public_peers)
    rs_members = [asn for asn in reversed(stubs_by_size) if asn not in taken][
        : spec.route_server_member_count
    ]
    wired.private_peer_asns = list(private_peers)
    wired.public_peer_asns = list(public_peers)
    wired.route_server_member_asns = list(rs_members)

    transits = internet.tier1s[: spec.transit_count]
    if len(transits) < spec.transit_count:
        raise TopologyError(
            f"internet has only {len(transits)} tier-1s; "
            f"spec wants {spec.transit_count}"
        )

    address_counter = 1

    def next_address() -> int:
        nonlocal address_counter
        address = _session_address(address_counter)
        address_counter += 1
        return address

    def wire_session(
        router: str,
        interface: str,
        peer_asn: int,
        peer_type: PeerType,
        feed: Iterable[Tuple[Prefix, Sequence[int]]],
        session_name: str = "",
    ) -> PeerDescriptor:
        session = PeerDescriptor(
            router=router,
            peer_asn=peer_asn,
            peer_type=peer_type,
            interface=interface,
            address=next_address(),
            session_name=session_name,
        )
        pop.add_session(session)
        registry.register(session)
        speaker = speakers[router]
        speaker.add_session(
            session, standard_import_policy(spec.local_asn, peer_type)
        )
        speaker.establish_directly(session.name)
        announced = _announce_feed(speaker, session, feed)
        wired.feeds[session.name] = announced
        return session

    # -- transit: every provider on every router ------------------------------
    for t_index, transit_asn in enumerate(transits):
        feed = list(internet.transit_feed(transit_asn))
        for router in router_names:
            pop.routers[router].add_interface(
                f"tr{t_index}", spec.transit_capacity
            )
            wire_session(
                router,
                f"tr{t_index}",
                transit_asn,
                PeerType.TRANSIT,
                feed,
            )

    # -- private interconnects: dedicated interfaces, round-robin routers ------
    pni_capacities = _provision_private_capacities(
        spec, internet, private_peers, rng
    )
    for p_index, peer_asn in enumerate(private_peers):
        router = router_names[p_index % len(router_names)]
        interface = f"pni{p_index}"
        pop.routers[router].add_interface(
            interface, pni_capacities[peer_asn]
        )
        wire_session(
            router,
            interface,
            peer_asn,
            PeerType.PRIVATE,
            internet.peer_feed(peer_asn),
        )

    # -- the IXP: one shared interface on the first router ---------------------
    ixp_router = router_names[0]
    pop.routers[ixp_router].add_interface("ixp0", spec.ixp_capacity)
    for peer_asn in public_peers:
        wire_session(
            ixp_router,
            "ixp0",
            peer_asn,
            PeerType.PUBLIC,
            internet.peer_feed(peer_asn),
        )
    if rs_members:
        # The route server is transparent: one session, member-origin paths.
        rs_asn = internet.tier1s[-1] + 1_000_000  # synthetic RS ASN
        _wire_route_server(
            wired,
            spec,
            ixp_router,
            "ixp0",
            rs_asn,
            rs_members,
            next_address(),
        )

    return wired


def _provision_private_capacities(
    spec: PopSpec,
    internet: InternetTopology,
    private_peers: Sequence[int],
    rng: np.random.Generator,
) -> Dict[int, Rate]:
    """Capacity per private peer — demand-proportional when possible."""
    if spec.expected_peak is None:
        return {
            asn: gbps(
                rng.uniform(
                    spec.private_capacity_min.gigabits_per_second,
                    spec.private_capacity_max.gigabits_per_second,
                )
            )
            for asn in private_peers
        }
    cone_sizes = {
        asn: max(1, len(internet.cone_prefixes(asn)))
        for asn in private_peers
    }
    total_cone = sum(cone_sizes.values())
    private_demand = (
        spec.expected_peak.gigabits_per_second
        * spec.private_preferred_share
    )
    tight = set(
        rng.choice(
            np.array(sorted(private_peers)),
            size=min(spec.tight_peer_count, len(private_peers)),
            replace=False,
        ).tolist()
    )
    capacities: Dict[int, Rate] = {}
    for asn in private_peers:
        expected_load = private_demand * cone_sizes[asn] / total_cone
        if asn in tight:
            factor = rng.uniform(*spec.tight_headroom)
        else:
            factor = rng.uniform(*spec.private_headroom)
        capacities[asn] = gbps(max(2.0, expected_load * factor))
    return capacities


def provision_against_demand(
    wired: WiredPop,
    weight_of,
    expected_peak: Rate,
    headroom: Tuple[float, float] = (1.3, 1.8),
    tight_headroom: Tuple[float, float] = (0.7, 0.92),
    tight_peer_count: int = 2,
    seed: int = 0,
    min_capacity: Rate = gbps(2),
) -> Dict[InterfaceKeyT, Rate]:
    """Re-provision private-interconnect capacity against actual demand.

    Operators size PNIs against the traffic they measure, not against
    topology proxies.  This recomputes, via the real decision process,
    each private interface's share of peak demand (``weight_of`` maps a
    prefix to its demand weight) and sets its capacity to that expected
    peak load times a headroom factor — except for ``tight_peer_count``
    randomly chosen peers whose capacity deliberately lags demand (the
    paper's under-augmented links, the ones Edge Fabric protects).

    Returns the new capacities by interface key.
    """
    from ..dataplane.popview import PopView

    rng = np.random.default_rng(seed)
    view = PopView(wired.speakers.values())
    peak = expected_peak.bits_per_second
    load_by_interface: Dict[InterfaceKeyT, float] = {}
    for prefix in wired.internet.all_prefixes():
        best = view.best(prefix)
        if best is None or best.peer_type is not PeerType.PRIVATE:
            continue
        key = (best.source.router, best.source.interface)
        load_by_interface[key] = (
            load_by_interface.get(key, 0.0) + weight_of(prefix) * peak
        )
    keys = sorted(load_by_interface)
    tight_keys = set()
    if keys and tight_peer_count:
        chosen = rng.choice(
            len(keys), size=min(tight_peer_count, len(keys)), replace=False
        )
        tight_keys = {keys[i] for i in chosen}
    new_capacities: Dict[InterfaceKeyT, Rate] = {}
    for key in keys:
        expected_load = load_by_interface[key]
        factor = (
            rng.uniform(*tight_headroom)
            if key in tight_keys
            else rng.uniform(*headroom)
        )
        capacity = Rate(
            max(min_capacity.bits_per_second, expected_load * factor)
        )
        new_capacities[key] = capacity
        router_name, interface_name = key
        router = wired.pop.routers[router_name]
        router.interfaces[interface_name] = Interface(
            router=router_name, name=interface_name, capacity=capacity
        )
    return new_capacities


def _wire_route_server(
    wired: WiredPop,
    spec: PopSpec,
    router: str,
    interface: str,
    rs_asn: int,
    members: Sequence[int],
    address: int,
) -> None:
    session = PeerDescriptor(
        router=router,
        peer_asn=rs_asn,
        peer_type=PeerType.ROUTE_SERVER,
        interface=interface,
        address=address,
        session_name="rs",
    )
    wired.pop.add_session(session)
    wired.registry.register(session)
    speaker = wired.speakers[router]
    speaker.add_session(
        session,
        standard_import_policy(spec.local_asn, PeerType.ROUTE_SERVER),
    )
    speaker.establish_directly(session.name)
    feed = wired.internet.route_server_feed(members)
    wired.feeds[session.name] = _announce_feed(speaker, session, feed)


def _announce_feed(
    speaker: BgpSpeaker,
    session: PeerDescriptor,
    feed: Iterable[Tuple[Prefix, Sequence[int]]],
) -> List[Prefix]:
    """Replay a route feed through the wire codec, batching by AS path."""
    by_path: Dict[Tuple[Family, Tuple[int, ...]], List[Prefix]] = {}
    for prefix, as_path in feed:
        by_path.setdefault(
            (prefix.family, tuple(as_path)), []
        ).append(prefix)
    announced: List[Prefix] = []
    for (family, as_path), prefixes in by_path.items():
        next_hop_family = family
        next_hop = (
            session.address
            if family is Family.IPV4
            else (0xFE80 << 112) | session.address
        )
        attrs = PathAttributes(
            as_path=AsPath.sequence(*as_path),
            next_hop=(next_hop_family, next_hop),
        )
        # BGP caps message size; announce in chunks that safely fit.
        for start in range(0, len(prefixes), 200):
            chunk = prefixes[start : start + 200]
            speaker.inject_update(session.name, chunk, attrs, family=family)
            announced.extend(chunk)
    return announced
