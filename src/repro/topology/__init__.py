"""PoP and Internet topology substrate."""

from .builder import PopSpec, WiredPop, build_pop
from .entities import Interface, InterfaceKey, PeeringRouter, PoP
from .internet import AsNode, InternetConfig, InternetTopology
from .scenarios import (
    STUDY_POP_NAMES,
    build_fleet,
    build_study_pop,
    default_internet,
    fleet_specs,
    study_pop_spec,
)

__all__ = [
    "PopSpec",
    "WiredPop",
    "build_pop",
    "Interface",
    "InterfaceKey",
    "PeeringRouter",
    "PoP",
    "AsNode",
    "InternetConfig",
    "InternetTopology",
    "STUDY_POP_NAMES",
    "build_fleet",
    "build_study_pop",
    "default_internet",
    "fleet_specs",
    "study_pop_spec",
]
