"""Synthetic AS-level Internet with Gao-Rexford routing.

The paper's PoPs see the real Internet through their peers' announcements.
This module builds the stand-in: a three-tier AS hierarchy (tier-1 transit
backbone, regional tier-2 providers, stub edge networks that originate
prefixes), with valley-free routing, from which the route feeds for every
kind of peering session can be derived:

- a **transit** provider announces a route to *every* prefix,
- a **peer** (private or public) announces its own prefixes plus its
  customer cone,
- a **route server** re-announces the prefixes of its member ASes.

Construction is fully deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..netbase.addr import Family, Prefix
from ..netbase.asn import Relationship
from ..netbase.errors import TopologyError

__all__ = ["InternetConfig", "AsNode", "InternetTopology"]


@dataclass(frozen=True)
class InternetConfig:
    """Shape of the synthetic Internet."""

    seed: int = 0
    tier1_count: int = 4
    tier2_count: int = 36
    stub_count: int = 400
    #: Providers per stub (multihoming degree), drawn inclusive.
    stub_providers: Tuple[int, int] = (1, 3)
    #: Providers per tier-2.
    tier2_providers: Tuple[int, int] = (2, 3)
    #: IPv4 prefixes originated per stub.
    prefixes_per_stub: Tuple[int, int] = (1, 6)
    #: Fraction of stubs that also originate one IPv6 prefix.
    ipv6_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.tier1_count < 1 or self.tier2_count < 1 or self.stub_count < 1:
            raise TopologyError("every tier needs at least one AS")


@dataclass
class AsNode:
    """One autonomous system."""

    asn: int
    tier: int  # 1, 2, or 3 (stub)
    providers: List[int] = field(default_factory=list)
    customers: List[int] = field(default_factory=list)
    peers: List[int] = field(default_factory=list)
    prefixes: List[Prefix] = field(default_factory=list)


class InternetTopology:
    """The generated AS graph plus routing queries over it."""

    def __init__(self, config: InternetConfig = InternetConfig()) -> None:
        self.config = config
        self.nodes: Dict[int, AsNode] = {}
        self._origin_of: Dict[Prefix, int] = {}
        self._cone_cache: Dict[int, FrozenSet[int]] = {}
        self._build()

    # -- generation -------------------------------------------------------------

    def _build(self) -> None:
        rng = np.random.default_rng(self.config.seed)
        asn = 100
        tier1s: List[int] = []
        for _ in range(self.config.tier1_count):
            self.nodes[asn] = AsNode(asn=asn, tier=1)
            tier1s.append(asn)
            asn += 1
        # Tier-1s form a full peering mesh.
        for i, a in enumerate(tier1s):
            for b in tier1s[i + 1 :]:
                self.nodes[a].peers.append(b)
                self.nodes[b].peers.append(a)
        tier2s: List[int] = []
        for _ in range(self.config.tier2_count):
            node = AsNode(asn=asn, tier=2)
            count = int(rng.integers(*self.config.tier2_providers, endpoint=True))
            chosen = rng.choice(tier1s, size=min(count, len(tier1s)), replace=False)
            for provider in sorted(int(p) for p in chosen):
                node.providers.append(provider)
                self.nodes[provider].customers.append(asn)
            self.nodes[asn] = node
            tier2s.append(asn)
            asn += 1
        # Sparse tier-2 peering mesh (regional peering).
        for i, a in enumerate(tier2s):
            for b in tier2s[i + 1 :]:
                if rng.random() < 0.15:
                    self.nodes[a].peers.append(b)
                    self.nodes[b].peers.append(a)
        prefix_block = 0
        for _ in range(self.config.stub_count):
            node = AsNode(asn=asn, tier=3)
            count = int(rng.integers(*self.config.stub_providers, endpoint=True))
            chosen = rng.choice(tier2s, size=min(count, len(tier2s)), replace=False)
            for provider in sorted(int(p) for p in chosen):
                node.providers.append(provider)
                self.nodes[provider].customers.append(asn)
            n_prefixes = int(
                rng.integers(*self.config.prefixes_per_stub, endpoint=True)
            )
            for _ in range(n_prefixes):
                prefix = self._nth_v4_prefix(prefix_block)
                prefix_block += 1
                node.prefixes.append(prefix)
                self._origin_of[prefix] = asn
            if rng.random() < self.config.ipv6_fraction:
                prefix = self._nth_v6_prefix(prefix_block)
                prefix_block += 1
                node.prefixes.append(prefix)
                self._origin_of[prefix] = asn
            self.nodes[asn] = node
            asn += 1

    @staticmethod
    def _nth_v4_prefix(n: int) -> Prefix:
        # Carve /24s out of 11.0.0.0/8 (never collides with test prefixes).
        if n >= (1 << 16):
            raise TopologyError("prefix space exhausted (max 65536 /24s)")
        network = (11 << 24) | (n << 8)
        return Prefix(Family.IPV4, network, 24)

    @staticmethod
    def _nth_v6_prefix(n: int) -> Prefix:
        network = (0x20020000 << 96) + (n << 80)
        return Prefix(Family.IPV6, network, 48)

    # -- basic queries ----------------------------------------------------------

    def node(self, asn: int) -> AsNode:
        try:
            return self.nodes[asn]
        except KeyError:
            raise TopologyError(f"unknown AS {asn}") from None

    def tier(self, tier: int) -> List[int]:
        return [asn for asn, node in self.nodes.items() if node.tier == tier]

    @property
    def tier1s(self) -> List[int]:
        return self.tier(1)

    @property
    def tier2s(self) -> List[int]:
        return self.tier(2)

    @property
    def stubs(self) -> List[int]:
        return self.tier(3)

    def all_prefixes(self) -> List[Prefix]:
        return list(self._origin_of)

    def origin_of(self, prefix: Prefix) -> int:
        try:
            return self._origin_of[prefix]
        except KeyError:
            raise TopologyError(f"no origin for {prefix}") from None

    def prefixes_of(self, asn: int) -> List[Prefix]:
        return list(self.node(asn).prefixes)

    # -- customer cones and valley-free paths ----------------------------------------

    def customer_cone(self, asn: int) -> FrozenSet[int]:
        """The AS itself plus everything reachable via customer links."""
        cached = self._cone_cache.get(asn)
        if cached is not None:
            return cached
        cone = {asn}
        frontier = [asn]
        while frontier:
            current = frontier.pop()
            for customer in self.nodes[current].customers:
                if customer not in cone:
                    cone.add(customer)
                    frontier.append(customer)
        result = frozenset(cone)
        self._cone_cache[asn] = result
        return result

    def cone_prefixes(self, asn: int) -> List[Prefix]:
        """Every prefix originated inside *asn*'s customer cone."""
        out: List[Prefix] = []
        for member in sorted(self.customer_cone(asn)):
            out.extend(self.nodes[member].prefixes)
        return out

    def path_down_to(self, from_asn: int, origin: int) -> Optional[List[int]]:
        """Shortest customer-chain path from *from_asn* down to *origin*.

        Returns the AS path (starting at *from_asn*, ending at *origin*)
        or None if the origin is outside the customer cone.  BFS over
        customer links gives the shortest such chain, which is what a
        sane BGP configuration would propagate.
        """
        if from_asn == origin:
            return [from_asn]
        if origin not in self.customer_cone(from_asn):
            return None
        parents = {from_asn: None}
        frontier = [from_asn]
        while frontier:
            next_frontier: List[int] = []
            for current in frontier:
                for customer in sorted(self.nodes[current].customers):
                    if customer in parents:
                        continue
                    parents[customer] = current
                    if customer == origin:
                        path = [customer]
                        while parents[path[-1]] is not None:
                            path.append(parents[path[-1]])
                        return list(reversed(path))
                    next_frontier.append(customer)
            frontier = next_frontier
        return None

    def transit_path_to(self, tier1: int, origin: int) -> List[int]:
        """The valley-free path a tier-1 transit provider announces.

        Either straight down its cone, or across the tier-1 mesh to the
        provider that covers the origin, then down.
        """
        direct = self.path_down_to(tier1, origin)
        if direct is not None:
            return direct
        best: Optional[List[int]] = None
        for peer in sorted(self.nodes[tier1].peers):
            if self.nodes[peer].tier != 1:
                continue
            down = self.path_down_to(peer, origin)
            if down is not None and (best is None or len(down) + 1 < len(best)):
                best = [tier1] + down
        if best is None:
            raise TopologyError(
                f"origin AS {origin} unreachable from tier-1 {tier1}"
            )
        return best

    def peer_path_to(self, peer_asn: int, origin: int) -> Optional[List[int]]:
        """The path a settlement-free peer announces (cone only)."""
        return self.path_down_to(peer_asn, origin)

    # -- route feeds for a PoP's sessions ------------------------------------------------

    def transit_feed(self, tier1: int) -> Iterator[Tuple[Prefix, List[int]]]:
        """(prefix, AS path) for everything — the full table."""
        for prefix in self.all_prefixes():
            yield prefix, self.transit_path_to(tier1, self.origin_of(prefix))

    def peer_feed(self, peer_asn: int) -> Iterator[Tuple[Prefix, List[int]]]:
        """(prefix, AS path) for the peer's customer cone."""
        for prefix in self.cone_prefixes(peer_asn):
            path = self.peer_path_to(peer_asn, self.origin_of(prefix))
            if path is not None:
                yield prefix, path

    def route_server_feed(
        self, members: Sequence[int]
    ) -> Iterator[Tuple[Prefix, List[int]]]:
        """(prefix, AS path) as a route server re-announces member routes.

        Route servers are transparent: they do not add their own ASN.
        """
        for member in members:
            yield from self.peer_feed(member)

    def relationship(self, a: int, b: int) -> Optional[Relationship]:
        """Relationship of *b* from *a*'s point of view."""
        node = self.node(a)
        if b in node.customers:
            return Relationship.CUSTOMER
        if b in node.providers:
            return Relationship.PROVIDER
        if b in node.peers:
            return Relationship.PEER
        return None
