"""Canonical scenarios: the four study PoPs and the 20-PoP fleet.

The paper examines four PoPs in depth (differing in how well-peered they
are and how tight their peering capacity is) and reports deployment-wide
numbers across roughly twenty PoPs.  These constructors produce seeded
synthetic equivalents; every experiment references them by name so that
results are reproducible run to run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..bgp.peering import PeerDescriptor, PeerType
from ..bgp.speaker import BgpSpeaker
from ..bmp.collector import PeerRegistry
from ..netbase.errors import TopologyError
from ..netbase.units import Rate, gbps
from .builder import PopSpec, WiredPop, build_pop
from .entities import PoP
from .internet import InternetConfig, InternetTopology

__all__ = [
    "STUDY_POP_NAMES",
    "default_internet",
    "study_pop_spec",
    "build_study_pop",
    "fleet_specs",
    "build_fleet",
    "ScalePop",
    "build_scale_pop",
]

STUDY_POP_NAMES = ("pop-a", "pop-b", "pop-c", "pop-d")


def default_internet(
    seed: int = 0, config: Optional[InternetConfig] = None
) -> InternetTopology:
    """The synthetic Internet shared by the canonical scenarios."""
    return InternetTopology(config or InternetConfig(seed=seed))


def study_pop_spec(name: str, seed: int = 0) -> PopSpec:
    """Spec for one of the four study PoPs.

    - **pop-a** — well-peered, deliberately tight private capacity: the
      overload-prone PoP the paper's motivating figures describe.
    - **pop-b** — transit-heavy with few peers: BGP's preferred placement
      mostly lands on big transit pipes, so little TE is needed.
    - **pop-c** — balanced mid-size PoP.
    - **pop-d** — exchange-heavy: many public peers behind one shared IXP
      port, the sharing that makes public peering risky.
    """
    base = dict(seed=seed)
    if name == "pop-a":
        return PopSpec(
            name=name,
            expected_peak=gbps(170),
            tight_peer_count=3,
            router_count=2,
            transit_count=2,
            private_peer_count=10,
            public_peer_count=24,
            route_server_member_count=40,
            private_capacity_min=gbps(8),
            private_capacity_max=gbps(22),
            ixp_capacity=gbps(80),
            **base,
        )
    if name == "pop-b":
        return PopSpec(
            name=name,
            expected_peak=gbps(200),
            tight_peer_count=1,
            router_count=2,
            transit_count=3,
            private_peer_count=3,
            public_peer_count=8,
            route_server_member_count=12,
            private_capacity_min=gbps(20),
            private_capacity_max=gbps(40),
            ixp_capacity=gbps(40),
            **base,
        )
    if name == "pop-c":
        return PopSpec(
            name=name,
            expected_peak=gbps(150),
            tight_peer_count=2,
            router_count=2,
            transit_count=2,
            private_peer_count=6,
            public_peer_count=16,
            route_server_member_count=30,
            private_capacity_min=gbps(10),
            private_capacity_max=gbps(30),
            ixp_capacity=gbps(60),
            **base,
        )
    if name == "pop-d":
        return PopSpec(
            name=name,
            expected_peak=gbps(160),
            tight_peer_count=1,
            router_count=2,
            transit_count=2,
            private_peer_count=4,
            public_peer_count=36,
            route_server_member_count=80,
            private_capacity_min=gbps(15),
            private_capacity_max=gbps(35),
            ixp_capacity=gbps(50),
            **base,
        )
    raise TopologyError(
        f"unknown study PoP {name!r}; expected one of {STUDY_POP_NAMES}"
    )


def build_study_pop(
    name: str = "pop-a",
    seed: int = 0,
    internet: Optional[InternetTopology] = None,
) -> WiredPop:
    """Build one of the four canonical study PoPs."""
    internet = internet or default_internet(seed)
    return build_pop(study_pop_spec(name, seed), internet)


def fleet_specs(count: int = 20, seed: int = 0) -> List[PopSpec]:
    """Specs for a deployment-wide fleet, cycling the four archetypes."""
    specs = []
    for index in range(count):
        archetype = STUDY_POP_NAMES[index % len(STUDY_POP_NAMES)]
        spec = study_pop_spec(archetype, seed=seed + index)
        specs.append(
            PopSpec(
                **{
                    **spec.__dict__,
                    "name": f"pop-{index:02d}",
                    "seed": seed + index,
                }
            )
        )
    return specs


def build_fleet(
    count: int = 20,
    seed: int = 0,
    internet: Optional[InternetTopology] = None,
) -> Dict[str, WiredPop]:
    """Build the whole fleet against one shared Internet."""
    internet = internet or default_internet(seed)
    return {
        spec.name: build_pop(spec, internet)
        for spec in fleet_specs(count, seed)
    }


# -- the scale scenario's PoP -------------------------------------------------

_SCALE_LOCAL_ASN = 64700
_SCALE_TRANSIT_ASN = 65010
_SCALE_PNI_ASN_BASE = 65100


@dataclass
class ScalePop:
    """A minimal PoP sized for synthetic-scale runs.

    One router, one big transit port, and a row of PNI ports.  Unlike
    :class:`~.builder.WiredPop` there is no synthetic Internet behind it:
    the scale harness (:mod:`repro.core.scale`) ingests routes and rate
    estimates directly into the collectors, so only the PoP structure,
    the peer registry, and a speaker for the injector's iBGP session are
    wired here.
    """

    pop: PoP
    speakers: Dict[str, BgpSpeaker]
    registry: PeerRegistry
    transit: PeerDescriptor
    pnis: List[PeerDescriptor]


def build_scale_pop(
    pni_capacities: Sequence[Rate],
    transit_capacity: Rate,
    name: str = "scale",
) -> ScalePop:
    """Build the scale PoP: ``len(pni_capacities)`` PNIs plus transit.

    Sessions are registered with the PoP and the BMP peer registry but
    *not* fed through a speaker's import pipeline — the scale harness
    constructs routes with their post-import LOCAL_PREF already applied
    and hands them straight to :meth:`BmpCollector.ingest_route`.  The
    speaker exists solely so the :class:`~repro.core.injector.BgpInjector`
    has a router to hold its iBGP session with.
    """
    if not pni_capacities:
        raise TopologyError("a scale PoP needs at least one PNI")
    router_name = f"{name}-pr0"
    pop = PoP(name, local_asn=_SCALE_LOCAL_ASN)
    router = pop.add_router(router_name, router_id=1)
    registry = PeerRegistry()
    speaker = BgpSpeaker(
        name=router_name, asn=_SCALE_LOCAL_ASN, router_id=1
    )

    def _session(
        asn: int, peer_type: PeerType, interface: str, address: int
    ) -> PeerDescriptor:
        session = PeerDescriptor(
            router=router_name,
            peer_asn=asn,
            peer_type=peer_type,
            interface=interface,
            address=address,
        )
        pop.add_session(session)
        registry.register(session)
        return session

    router.add_interface("tr0", transit_capacity)
    transit = _session(_SCALE_TRANSIT_ASN, PeerType.TRANSIT, "tr0", 1)
    pnis: List[PeerDescriptor] = []
    for index, capacity in enumerate(pni_capacities):
        interface = f"pni{index}"
        router.add_interface(interface, capacity)
        pnis.append(
            _session(
                _SCALE_PNI_ASN_BASE + index,
                PeerType.PRIVATE,
                interface,
                2 + index,
            )
        )
    return ScalePop(
        pop=pop,
        speakers={router_name: speaker},
        registry=registry,
        transit=transit,
        pnis=pnis,
    )
