"""PoP entities: peering routers, egress interfaces, and the PoP itself.

A PoP (point of presence) is the unit Edge Fabric operates on: a set of
peering routers (PRs), each with egress interfaces of finite capacity,
each interface carrying one or more BGP sessions.  Private interconnects
get a dedicated interface; all public-exchange sessions (bilateral and
route-server) at the same IXP share the PoP's IXP-facing interface —
which is exactly the capacity-sharing that makes public peering the
riskier egress in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..bgp.peering import PeerDescriptor, PeerType
from ..netbase.errors import TopologyError
from ..netbase.units import Rate

__all__ = ["InterfaceKey", "Interface", "PeeringRouter", "PoP"]

#: PoP-wide identity of an egress interface.
InterfaceKey = Tuple[str, str]  # (router name, interface name)


@dataclass(frozen=True)
class Interface:
    """One egress interface on one peering router."""

    router: str
    name: str
    capacity: Rate

    @property
    def key(self) -> InterfaceKey:
        return (self.router, self.name)

    def __str__(self) -> str:
        return f"{self.router}/{self.name} ({self.capacity})"


@dataclass
class PeeringRouter:
    """A PR: a named router holding interfaces and sessions."""

    name: str
    router_id: int
    interfaces: Dict[str, Interface] = field(default_factory=dict)
    sessions: List[PeerDescriptor] = field(default_factory=list)

    def add_interface(self, name: str, capacity: Rate) -> Interface:
        if name in self.interfaces:
            raise TopologyError(f"duplicate interface {self.name}/{name}")
        interface = Interface(router=self.name, name=name, capacity=capacity)
        self.interfaces[name] = interface
        return interface

    def add_session(self, session: PeerDescriptor) -> None:
        if session.router != self.name:
            raise TopologyError(
                f"session {session.name} belongs to {session.router}, "
                f"not {self.name}"
            )
        if session.interface not in self.interfaces:
            raise TopologyError(
                f"session {session.name} references unknown interface "
                f"{session.interface}"
            )
        self.sessions.append(session)


class PoP:
    """A point of presence: routers, interfaces, sessions, capacities."""

    def __init__(self, name: str, local_asn: int) -> None:
        self.name = name
        self.local_asn = local_asn
        self.routers: Dict[str, PeeringRouter] = {}
        self._sessions_by_name: Dict[str, PeerDescriptor] = {}
        self._sessions_by_address: Dict[int, PeerDescriptor] = {}

    # -- construction --------------------------------------------------------

    def add_router(self, name: str, router_id: int) -> PeeringRouter:
        if name in self.routers:
            raise TopologyError(f"duplicate router {name}")
        router = PeeringRouter(name=name, router_id=router_id)
        self.routers[name] = router
        return router

    def add_session(self, session: PeerDescriptor) -> None:
        router = self.routers.get(session.router)
        if router is None:
            raise TopologyError(f"unknown router {session.router}")
        router.add_session(session)
        if session.name in self._sessions_by_name:
            raise TopologyError(f"duplicate session {session.name}")
        self._sessions_by_name[session.name] = session
        if session.address:
            existing = self._sessions_by_address.get(session.address)
            if existing is not None:
                raise TopologyError(
                    f"address {session.address:#x} used by both "
                    f"{existing.name} and {session.name}"
                )
            self._sessions_by_address[session.address] = session

    # -- lookups --------------------------------------------------------------

    def interface(self, key: InterfaceKey) -> Interface:
        router_name, interface_name = key
        router = self.routers.get(router_name)
        if router is None or interface_name not in router.interfaces:
            raise TopologyError(f"unknown interface {key}")
        return router.interfaces[interface_name]

    def capacity_of(self, key: InterfaceKey) -> Rate:
        return self.interface(key).capacity

    def session_by_name(self, name: str) -> PeerDescriptor:
        try:
            return self._sessions_by_name[name]
        except KeyError:
            raise TopologyError(f"unknown session {name}") from None

    def session_by_address(self, address: int) -> Optional[PeerDescriptor]:
        return self._sessions_by_address.get(address)

    # -- iteration ---------------------------------------------------------------

    def interfaces(self) -> Iterator[Interface]:
        for router in self.routers.values():
            yield from router.interfaces.values()

    def interface_keys(self) -> List[InterfaceKey]:
        return [interface.key for interface in self.interfaces()]

    def sessions(self, peer_type: Optional[PeerType] = None) -> List[
        PeerDescriptor
    ]:
        out = []
        for router in self.routers.values():
            for session in router.sessions:
                if peer_type is None or session.peer_type is peer_type:
                    out.append(session)
        return out

    def ebgp_sessions(self) -> List[PeerDescriptor]:
        return [s for s in self.sessions() if s.is_ebgp]

    def sessions_on_interface(self, key: InterfaceKey) -> List[PeerDescriptor]:
        router_name, interface_name = key
        router = self.routers.get(router_name)
        if router is None:
            return []
        return [
            session
            for session in router.sessions
            if session.interface == interface_name
        ]

    def total_egress_capacity(self) -> Rate:
        total = Rate(0)
        for interface in self.interfaces():
            total = total + interface.capacity
        return total

    # -- summary ---------------------------------------------------------------------

    def describe(self) -> Dict[str, object]:
        """Table-1-style summary row for this PoP."""
        by_type = {
            peer_type: len(self.sessions(peer_type))
            for peer_type in PeerType
        }
        return {
            "pop": self.name,
            "routers": len(self.routers),
            "interfaces": sum(1 for _ in self.interfaces()),
            "capacity": str(self.total_egress_capacity()),
            "transit_sessions": by_type[PeerType.TRANSIT],
            "private_peers": by_type[PeerType.PRIVATE],
            "public_peers": by_type[PeerType.PUBLIC],
            "route_server_peers": by_type[PeerType.ROUTE_SERVER],
        }

    def __repr__(self) -> str:
        return (
            f"PoP({self.name!r}, routers={len(self.routers)}, "
            f"sessions={len(self._sessions_by_name)})"
        )
