"""BMP substrate: route monitoring from peering routers to the controller."""

from .collector import BmpCollector, CollectorStats, PeerRegistry
from .exporter import BmpExporter
from .messages import (
    BMP_VERSION,
    BmpMessage,
    BmpMessageType,
    InitiationMessage,
    PeerDownMessage,
    PeerHeader,
    PeerUpMessage,
    RouteMonitoringMessage,
    StatisticsReport,
    TerminationMessage,
    decode_bmp,
    decode_bmp_stream,
    encode_bmp,
)

__all__ = [
    "BmpCollector",
    "CollectorStats",
    "PeerRegistry",
    "BmpExporter",
    "BMP_VERSION",
    "BmpMessage",
    "BmpMessageType",
    "InitiationMessage",
    "PeerDownMessage",
    "PeerHeader",
    "PeerUpMessage",
    "RouteMonitoringMessage",
    "StatisticsReport",
    "TerminationMessage",
    "decode_bmp",
    "decode_bmp_stream",
    "encode_bmp",
]
