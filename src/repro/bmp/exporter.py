"""BMP exporter: mirrors a peering router's route events onto a BMP feed.

Attaches to a :class:`~repro.bgp.speaker.BgpSpeaker` and produces the byte
stream a production router's BMP implementation would send to the
monitoring station: an INITIATION naming the router, PEER_UP as sessions
establish, and a post-policy ROUTE_MONITORING message for every accepted
announcement or withdrawal.

The monitored view is the *post-policy* Adj-RIB-In (BMP's L flag): the
controller wants routes as the router would actually consider them, with
LOCAL_PREF tiers and ingress communities applied.
"""

from __future__ import annotations

from typing import Callable

from ..bgp.messages import UpdateMessage, encode_message
from ..bgp.peering import PeerDescriptor, PeerType
from ..bgp.route import Route
from ..bgp.speaker import BgpSpeaker, RouteEvent
from .messages import (
    InitiationMessage,
    PeerDownMessage,
    PeerHeader,
    PeerUpMessage,
    RouteMonitoringMessage,
    TerminationMessage,
    encode_bmp,
)

__all__ = ["BmpExporter"]

#: Sink for exported bytes: (router name, bmp bytes).
Sink = Callable[[str, bytes], None]


class BmpExporter:
    """Streams one router's routing activity as BMP messages."""

    def __init__(self, speaker: BgpSpeaker, sink: Sink) -> None:
        self._speaker = speaker
        self._sink = sink
        self._peers_up: set[str] = set()
        speaker.subscribe(self._on_route_event)
        self._emit(encode_bmp(InitiationMessage(sys_name=speaker.name)))

    @property
    def router_name(self) -> str:
        return self._speaker.name

    def _emit(self, data: bytes) -> None:
        self._sink(self._speaker.name, data)

    def _peer_header(self, peer: PeerDescriptor) -> PeerHeader:
        return PeerHeader(
            peer_address=peer.address,
            peer_asn=peer.peer_asn,
            peer_bgp_id=peer.address & 0xFFFFFFFF,
            family=peer.family,
            post_policy=True,
            timestamp=self._speaker.clock,
        )

    def announce_peer_up(self, peer: PeerDescriptor) -> None:
        """Emit PEER_UP (call when the session establishes)."""
        self._peers_up.add(peer.name)
        self._emit(encode_bmp(PeerUpMessage(peer=self._peer_header(peer))))

    def announce_peer_down(self, peer: PeerDescriptor, reason: int = 2) -> None:
        self._peers_up.discard(peer.name)
        self._emit(
            encode_bmp(
                PeerDownMessage(peer=self._peer_header(peer), reason=reason)
            )
        )

    def terminate(self, reason: str = "shutting down") -> None:
        self._emit(encode_bmp(TerminationMessage(reason=reason)))

    # -- route mirroring ---------------------------------------------------

    def _on_route_event(self, _speaker: BgpSpeaker, event: RouteEvent) -> None:
        if event.peer.peer_type is PeerType.INTERNAL:
            # Never mirror the Edge Fabric injector's own announcements
            # back into the controller's route input — the paper's design
            # explicitly breaks this feedback loop.
            return
        if event.peer.name not in self._peers_up:
            # Production BMP implicitly covers every configured session;
            # we announce lazily so ad-hoc test sessions still export.
            self.announce_peer_up(event.peer)
        pdu = self._render_update(event)
        message = RouteMonitoringMessage(
            peer=self._peer_header(event.peer), update_pdu=pdu
        )
        self._emit(encode_bmp(message))

    @staticmethod
    def _render_update(event: RouteEvent) -> bytes:
        """Re-encode the event as a single-prefix post-policy UPDATE."""
        if event.withdrawn or event.route is None:
            update = UpdateMessage(
                family=event.prefix.family, withdrawn=(event.prefix,)
            )
        else:
            route: Route = event.route
            update = UpdateMessage(
                family=event.prefix.family,
                announced=(event.prefix,),
                attributes=route.attributes,
            )
        return encode_message(update)

    # -- liveness ---------------------------------------------------------------

    def heartbeat(self) -> None:
        """Emit per-peer statistics reports.

        Production BMP sessions are never silent for long: routers emit
        periodic statistics, and collectors treat the stream's liveness
        as proof the feed is current.  The pipeline calls this every
        simulation tick so a *quiet* BGP table (no route changes) is not
        mistaken for a *stale* one.
        """
        from .messages import StatisticsReport, StatType

        for session in self._speaker.sessions():
            if session.peer.peer_type is PeerType.INTERNAL:
                continue
            self._emit(
                encode_bmp(
                    StatisticsReport(
                        peer=self._peer_header(session.peer),
                        stats=(
                            (
                                int(StatType.ADJ_RIB_IN_ROUTES),
                                len(session.adj_rib_in),
                            ),
                        ),
                    )
                )
            )

    # -- bulk sync ------------------------------------------------------------

    def export_full_rib(self) -> None:
        """Re-export every route currently held (collector resync)."""
        for session in self._speaker.sessions():
            for route in session.adj_rib_in.routes():
                update = UpdateMessage(
                    family=route.prefix.family,
                    announced=(route.prefix,),
                    attributes=route.attributes,
                )
                message = RouteMonitoringMessage(
                    peer=self._peer_header(session.peer),
                    update_pdu=encode_message(update),
                )
                self._emit(encode_bmp(message))
