"""The BMP monitoring station: the controller's view of every route.

One :class:`BmpCollector` per PoP consumes the BMP byte streams of all the
PoP's peering routers and reconstructs, per (router, peering session), the
post-policy Adj-RIB-In.  The result is the controller's route input: for
any destination prefix it can list *every* available egress route at the
PoP, in contrast to a router's FIB which only shows the winner.

BMP identifies peers by (address, ASN); which *session* that is — its peer
type and, critically, its egress interface — is configuration, not wire
data, so the collector is constructed with a registry mapping
(router name, peer address, peer ASN) to :class:`PeerDescriptor`, exactly
the join a production deployment does against its router configs.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..bgp.communities import INJECTED
from ..bgp.decision import DecisionConfig, DEFAULT_CONFIG
from ..bgp.messages import UpdateMessage, decode_stream
from ..bgp.peering import PeerDescriptor
from ..bgp.rib import LocRib
from ..bgp.route import Route
from ..netbase.addr import Family, Prefix
from ..netbase.errors import MalformedMessage, TruncatedMessage
from ..obs.telemetry import Telemetry
from .messages import (
    BmpMessage,
    InitiationMessage,
    PeerDownMessage,
    PeerHeader,
    PeerUpMessage,
    RouteMonitoringMessage,
    StatisticsReport,
    TerminationMessage,
    decode_bmp_at,
)

#: Bound on one router's partial-message buffer.  A healthy stream
#: never holds more than one incomplete message (< MAX_BMP_MESSAGE_LENGTH
#: plus one socket read); past this the stream is taken to be garbage.
_MAX_STREAM_BUFFER = 4 << 20

__all__ = ["PeerRegistry", "BmpCollector", "CollectorStats"]


class PeerRegistry:
    """Maps BMP per-peer headers back to configured sessions."""

    def __init__(self) -> None:
        self._sessions: Dict[Tuple[str, int, int], PeerDescriptor] = {}

    def register(self, peer: PeerDescriptor) -> None:
        key = (peer.router, peer.address, peer.peer_asn)
        self._sessions[key] = peer

    def register_all(self, peers: Iterable[PeerDescriptor]) -> None:
        for peer in peers:
            self.register(peer)

    def resolve(
        self, router: str, header: PeerHeader
    ) -> Optional[PeerDescriptor]:
        return self._sessions.get(
            (router, header.peer_address, header.peer_asn)
        )

    def is_registered(self, peer: PeerDescriptor) -> bool:
        return (
            self._sessions.get((peer.router, peer.address, peer.peer_asn))
            == peer
        )

    def __len__(self) -> int:
        return len(self._sessions)


@dataclass
class CollectorStats:
    """Counters the collector keeps about its own operation."""

    messages: int = 0
    route_monitoring: int = 0
    announcements: int = 0
    withdrawals: int = 0
    peer_ups: int = 0
    peer_downs: int = 0
    unknown_peers: int = 0
    decode_errors: int = 0
    injected_dropped: int = 0


class BmpCollector:
    """Reconstructs the PoP-wide multi-route RIB from BMP feeds."""

    def __init__(
        self,
        registry: PeerRegistry,
        decision_config: DecisionConfig = DEFAULT_CONFIG,
        clock: Optional[callable] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self._registry = registry
        self._decision_config = decision_config
        self._rib = LocRib(decision_config)
        self._buffers: Dict[str, bytes] = {}
        self._routers_seen: Dict[str, float] = {}
        self._last_update_at: Optional[float] = None
        self._clock = clock or _time.monotonic
        #: Set by :meth:`reset`; cleared once a full-RIB re-export has
        #: repopulated the collector (the resubscription loop's job).
        self.needs_resync = False
        self.resets = 0
        self.stats = CollectorStats()
        self.telemetry = telemetry or Telemetry(name="bmp")
        metrics = self.telemetry.registry
        self._m_messages = metrics.counter(
            "bmp_messages_total", "BMP messages consumed"
        )
        self._m_announcements = metrics.counter(
            "bmp_announcements_total", "Route announcements applied"
        )
        self._m_withdrawals = metrics.counter(
            "bmp_withdrawals_total", "Route withdrawals applied"
        )
        self._m_decode_errors = metrics.counter(
            "bmp_decode_errors_total", "Undecodable PDUs dropped"
        )

    # -- feed ingestion ------------------------------------------------------

    def feed(self, router: str, data: bytes) -> bool:
        """Consume bytes from one router's BMP stream.

        Returns ``True`` while the stream frames cleanly.  On malformed
        framing the collector counts the defect, discards the rest of
        the router's buffer (framing is unrecoverable mid-stream) and
        raises :attr:`needs_resync` so the degradation ladder drives a
        full re-export — it never propagates, so one bad byte stream
        cannot crash the control loop.  Callers that own the transport
        (the TCP frontend) use the ``False`` return to drop the
        connection.
        """
        buffer = self._buffers.get(router, b"") + data
        offset = 0
        size = len(buffer)
        ok = True
        while offset < size:
            try:
                message, consumed = decode_bmp_at(buffer, offset)
            except TruncatedMessage:
                break
            except MalformedMessage:
                ok = False
                break
            # Messages decoded before a framing defect still apply —
            # the stream was valid up to the defect.
            offset += consumed
            self._handle(router, message)
        if ok and size - offset > _MAX_STREAM_BUFFER:
            # Never-completing "truncation" (e.g. a huge claimed length
            # fed one byte at a time) must not buffer unboundedly.
            ok = False
        if not ok:
            self.stats.decode_errors += 1
            self._m_decode_errors.inc()
            self._buffers.pop(router, None)
            self.needs_resync = True
            return False
        self._buffers[router] = buffer[offset:]
        return True

    def _handle(self, router: str, message: BmpMessage) -> None:
        self.stats.messages += 1
        self._m_messages.inc()
        if isinstance(message, InitiationMessage):
            name = message.sys_name or router
            self._routers_seen[name] = self._clock()
            return
        if isinstance(message, TerminationMessage):
            self._routers_seen.pop(router, None)
            return
        if isinstance(message, PeerUpMessage):
            self.stats.peer_ups += 1
            return
        if isinstance(message, PeerDownMessage):
            self.stats.peer_downs += 1
            peer = self._registry.resolve(router, message.peer)
            if peer is not None:
                self._rib.withdraw_peer(peer)
            else:
                self.stats.unknown_peers += 1
            return
        if isinstance(message, RouteMonitoringMessage):
            self._handle_route_monitoring(router, message)
            return
        if isinstance(message, StatisticsReport):
            # Statistics double as liveness: a quiet-but-healthy feed
            # keeps reporting, so it must not be considered stale.
            now = self._clock()
            self._routers_seen[router] = now
            self._last_update_at = now

    def _handle_route_monitoring(
        self, router: str, message: RouteMonitoringMessage
    ) -> None:
        self.stats.route_monitoring += 1
        peer = self._registry.resolve(router, message.peer)
        if peer is None:
            self.stats.unknown_peers += 1
            return
        try:
            updates, remainder = decode_stream(message.update_pdu)
            if remainder:
                raise MalformedMessage("trailing bytes after UPDATE")
        except MalformedMessage:
            self.stats.decode_errors += 1
            self._m_decode_errors.inc()
            return
        now = self._clock()
        for update in updates:
            if not isinstance(update, UpdateMessage):
                self.stats.decode_errors += 1
                self._m_decode_errors.inc()
                continue
            self._apply_update(peer, update, now)
        self._routers_seen[router] = now
        self._last_update_at = now

    def _apply_update(
        self, peer: PeerDescriptor, update: UpdateMessage, now: float
    ) -> None:
        if update.withdrawn:
            self._m_withdrawals.inc(len(update.withdrawn))
        for prefix in update.withdrawn:
            self.stats.withdrawals += 1
            self._rib.withdraw(prefix, peer)
        if update.announced and update.attributes is not None:
            if update.attributes.has_community(INJECTED):
                # Defense in depth: even if an injected route leaked into
                # a BMP feed, the controller must not treat it as input.
                self.stats.injected_dropped += len(update.announced)
                return
            self._m_announcements.inc(len(update.announced))
            for prefix in update.announced:
                self.stats.announcements += 1
                route = Route(
                    prefix=prefix,
                    attributes=update.attributes,
                    source=peer,
                    learned_at=now,
                )
                self._rib.update(route)

    # -- synthetic ingestion -----------------------------------------------------

    def ingest_route(self, route: Route, now: Optional[float] = None) -> None:
        """Install one route directly, bypassing the BMP wire path.

        Synthetic-scale harnesses use this to populate the same RIB the
        decoded path populates — identical versioning, journal and
        best-path behaviour — without encoding/decoding fifty thousand
        UPDATE PDUs.  Liveness and counters advance exactly as a decoded
        announcement would advance them.
        """
        if not self._registry.is_registered(route.source):
            self.stats.unknown_peers += 1
            return
        when = self._clock() if now is None else now
        self.stats.announcements += 1
        self._m_announcements.inc()
        self._rib.update(route)
        self._routers_seen[route.source.router] = when
        self._last_update_at = when

    def ingest_routes(
        self, routes: List[Route], now: Optional[float] = None
    ) -> None:
        """Bulk :meth:`ingest_route`: one decision pass per prefix.

        Counters, liveness, versioning and journal entries advance
        exactly as the per-route path advances them; only the redundant
        intermediate best-path recomputations (unobservable between the
        calls of a bulk load) are skipped.  Full-table seeding uses this.
        """
        when = self._clock() if now is None else now
        accepted: List[Route] = []
        for route in routes:
            if not self._registry.is_registered(route.source):
                self.stats.unknown_peers += 1
                continue
            accepted.append(route)
            self._routers_seen[route.source.router] = when
        if not accepted:
            return
        self.stats.announcements += len(accepted)
        self._m_announcements.inc(len(accepted))
        self._rib.load_routes(accepted)
        self._last_update_at = when

    def ingest_withdrawal(
        self,
        prefix: Prefix,
        source: PeerDescriptor,
        now: Optional[float] = None,
    ) -> None:
        """Withdraw one route directly, bypassing the BMP wire path."""
        when = self._clock() if now is None else now
        self.stats.withdrawals += 1
        self._m_withdrawals.inc()
        self._rib.withdraw(prefix, source)
        self._routers_seen[source.router] = when
        self._last_update_at = when

    # -- controller-facing queries ----------------------------------------------

    def routes_for(self, prefix: Prefix) -> List[Route]:
        """Every route for *prefix* across all routers, ranked."""
        return self._rib.routes_for(prefix)

    def best(self, prefix: Prefix) -> Optional[Route]:
        return self._rib.best(prefix)

    def prefixes(self, family: Optional[Family] = None) -> Iterator[Prefix]:
        return self._rib.prefixes(family)

    def longest_match(self, target: Prefix) -> Optional[Route]:
        return self._rib.longest_match(target)

    @property
    def rib(self) -> LocRib:
        """Direct access to the assembled multi-route RIB."""
        return self._rib

    def route_count(self) -> int:
        return self._rib.route_count()

    def prefix_count(self) -> int:
        return len(self._rib)

    # -- health -------------------------------------------------------------------

    def routers(self) -> Dict[str, float]:
        """Routers with live feeds and the time of their last activity."""
        return dict(self._routers_seen)

    def age(self) -> float:
        """Seconds since any route monitoring or liveness data arrived."""
        if self._last_update_at is None:
            return float("inf")
        return max(0.0, self._clock() - self._last_update_at)

    def reset(self) -> None:
        """Lose all collector state, as a crash-and-restart would.

        The RIB, partial stream buffers and liveness clocks are gone;
        :attr:`needs_resync` stays raised until the resubscription loop
        drives a full-RIB re-export and calls :meth:`mark_resynced`.
        Counters in :attr:`stats` survive — they describe the process,
        not the RIB.
        """
        self._rib = LocRib(self._decision_config)
        self._buffers.clear()
        self._routers_seen.clear()
        self._last_update_at = None
        self.needs_resync = True
        self.resets += 1

    def mark_resynced(self) -> None:
        """Acknowledge that a full-RIB re-export has been replayed."""
        self.needs_resync = False
