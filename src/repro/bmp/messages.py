"""BMP — BGP Monitoring Protocol v3 wire codec (RFC 7854 subset).

Edge Fabric learns *all* routes available at a PoP, not just chosen ones,
by having every peering router stream its per-peer Adj-RIB-In over BMP.
This module implements the message types that pipeline needs:

- INITIATION / TERMINATION (monitoring session lifecycle, sysName TLV),
- PEER_UP / PEER_DOWN (per-peer monitoring lifecycle),
- ROUTE_MONITORING (a per-peer header + a verbatim BGP UPDATE PDU),
- STATISTICS_REPORT (counter TLVs, used for collector health checks).

Route monitoring messages carry the real BGP UPDATE bytes produced by
:mod:`repro.bgp.messages`, exactly as production BMP re-encapsulates the
PDUs the router received.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum
from typing import List, Tuple

from ..netbase.addr import Family
from ..netbase.errors import MalformedMessage, TruncatedMessage

__all__ = [
    "BmpMessageType",
    "PeerHeader",
    "InitiationMessage",
    "TerminationMessage",
    "PeerUpMessage",
    "PeerDownMessage",
    "RouteMonitoringMessage",
    "StatisticsReport",
    "BmpMessage",
    "encode_bmp",
    "decode_bmp",
    "decode_bmp_at",
    "decode_bmp_stream",
    "BMP_VERSION",
    "MAX_BMP_MESSAGE_LENGTH",
]

BMP_VERSION = 3
_COMMON_HEADER_LEN = 6
_PEER_HEADER_LEN = 42

#: Upper bound on one message's claimed length.  Nothing this codec
#: produces comes near it; without a cap, garbage in the length field
#: would make a stream consumer buffer gigabytes waiting for a "body"
#: that never arrives.  Oversized claims are malformed, not truncated.
MAX_BMP_MESSAGE_LENGTH = 1 << 20


class BmpMessageType(IntEnum):
    ROUTE_MONITORING = 0
    STATISTICS_REPORT = 1
    PEER_DOWN = 2
    PEER_UP = 3
    INITIATION = 4
    TERMINATION = 5


class InfoTlvType(IntEnum):
    STRING = 0
    SYS_DESCR = 1
    SYS_NAME = 2


#: Peer flag bit: this feed is the post-policy Adj-RIB-In (the L flag).
PEER_FLAG_POST_POLICY = 0x40
PEER_FLAG_IPV6 = 0x80


@dataclass(frozen=True)
class PeerHeader:
    """The 42-byte per-peer header identifying whose RIB a message is about."""

    peer_address: int
    peer_asn: int
    peer_bgp_id: int
    family: Family = Family.IPV4
    post_policy: bool = True
    timestamp: float = 0.0
    peer_type: int = 0  # 0 = global instance peer
    distinguisher: int = 0

    def encode(self) -> bytes:
        flags = 0
        if self.family is Family.IPV6:
            flags |= PEER_FLAG_IPV6
        if self.post_policy:
            flags |= PEER_FLAG_POST_POLICY
        seconds = int(self.timestamp)
        micros = int(round((self.timestamp - seconds) * 1_000_000))
        return (
            struct.pack("!BB", self.peer_type, flags)
            + struct.pack("!Q", self.distinguisher)
            + self.peer_address.to_bytes(16, "big")
            + struct.pack("!II", self.peer_asn, self.peer_bgp_id)
            + struct.pack("!II", seconds, micros)
        )

    @classmethod
    def decode(cls, data: bytes) -> "PeerHeader":
        if len(data) < _PEER_HEADER_LEN:
            raise TruncatedMessage("BMP per-peer header truncated")
        peer_type, flags = struct.unpack_from("!BB", data, 0)
        distinguisher = struct.unpack_from("!Q", data, 2)[0]
        address = int.from_bytes(data[10:26], "big")
        asn, bgp_id, seconds, micros = struct.unpack_from("!IIII", data, 26)
        return cls(
            peer_address=address,
            peer_asn=asn,
            peer_bgp_id=bgp_id,
            family=Family.IPV6 if flags & PEER_FLAG_IPV6 else Family.IPV4,
            post_policy=bool(flags & PEER_FLAG_POST_POLICY),
            timestamp=seconds + micros / 1_000_000,
            peer_type=peer_type,
            distinguisher=distinguisher,
        )


def _encode_info_tlvs(tlvs: List[Tuple[int, bytes]]) -> bytes:
    out = b""
    for tlv_type, value in tlvs:
        out += struct.pack("!HH", tlv_type, len(value)) + value
    return out


def _decode_info_tlvs(data: bytes) -> List[Tuple[int, bytes]]:
    tlvs = []
    offset = 0
    while offset < len(data):
        if offset + 4 > len(data):
            raise TruncatedMessage("BMP TLV header truncated")
        tlv_type, length = struct.unpack_from("!HH", data, offset)
        offset += 4
        if offset + length > len(data):
            raise TruncatedMessage("BMP TLV body truncated")
        tlvs.append((tlv_type, data[offset : offset + length]))
        offset += length
    return tlvs


@dataclass(frozen=True)
class InitiationMessage:
    """Start of a monitoring session; identifies the exporting router."""

    sys_name: str
    sys_descr: str = ""

    def _body(self) -> bytes:
        tlvs = [(int(InfoTlvType.SYS_NAME), self.sys_name.encode())]
        if self.sys_descr:
            tlvs.append((int(InfoTlvType.SYS_DESCR), self.sys_descr.encode()))
        return _encode_info_tlvs(tlvs)


@dataclass(frozen=True)
class TerminationMessage:
    reason: str = ""

    def _body(self) -> bytes:
        return _encode_info_tlvs([(int(InfoTlvType.STRING), self.reason.encode())])


@dataclass(frozen=True)
class PeerUpMessage:
    peer: PeerHeader
    local_address: int = 0
    local_port: int = 179
    remote_port: int = 179
    sent_open: bytes = b""  # verbatim BGP OPEN PDUs
    received_open: bytes = b""

    def _body(self) -> bytes:
        return (
            self.peer.encode()
            + self.local_address.to_bytes(16, "big")
            + struct.pack("!HH", self.local_port, self.remote_port)
            + self.sent_open
            + self.received_open
        )


class PeerDownReason(IntEnum):
    LOCAL_NOTIFICATION = 1
    LOCAL_NO_NOTIFICATION = 2
    REMOTE_NOTIFICATION = 3
    REMOTE_NO_NOTIFICATION = 4


@dataclass(frozen=True)
class PeerDownMessage:
    peer: PeerHeader
    reason: int = PeerDownReason.REMOTE_NO_NOTIFICATION
    data: bytes = b""

    def _body(self) -> bytes:
        return self.peer.encode() + bytes([self.reason]) + self.data


@dataclass(frozen=True)
class RouteMonitoringMessage:
    """One BGP UPDATE, re-encapsulated with the peer it came from."""

    peer: PeerHeader
    update_pdu: bytes  # verbatim BGP UPDATE wire bytes

    def _body(self) -> bytes:
        return self.peer.encode() + self.update_pdu


class StatType(IntEnum):
    REJECTED_BY_POLICY = 0
    DUPLICATE_ADVERTISEMENTS = 1
    ADJ_RIB_IN_ROUTES = 7


@dataclass(frozen=True)
class StatisticsReport:
    peer: PeerHeader
    stats: Tuple[Tuple[int, int], ...] = ()  # (stat type, counter64) pairs

    def _body(self) -> bytes:
        out = self.peer.encode() + struct.pack("!I", len(self.stats))
        for stat_type, value in self.stats:
            out += struct.pack("!HHQ", stat_type, 8, value)
        return out


BmpMessage = (
    InitiationMessage
    | TerminationMessage
    | PeerUpMessage
    | PeerDownMessage
    | RouteMonitoringMessage
    | StatisticsReport
)

_TYPE_OF_MESSAGE = {
    InitiationMessage: BmpMessageType.INITIATION,
    TerminationMessage: BmpMessageType.TERMINATION,
    PeerUpMessage: BmpMessageType.PEER_UP,
    PeerDownMessage: BmpMessageType.PEER_DOWN,
    RouteMonitoringMessage: BmpMessageType.ROUTE_MONITORING,
    StatisticsReport: BmpMessageType.STATISTICS_REPORT,
}


def encode_bmp(message: BmpMessage) -> bytes:
    """Encode a BMP message with its common header."""
    msg_type = _TYPE_OF_MESSAGE.get(type(message))
    if msg_type is None:
        raise MalformedMessage(f"cannot encode {type(message).__name__}")
    body = message._body()
    length = _COMMON_HEADER_LEN + len(body)
    return struct.pack("!BIB", BMP_VERSION, length, msg_type) + body


def decode_bmp(data: bytes) -> Tuple[BmpMessage, int]:
    """Decode one BMP message; returns (message, bytes consumed)."""
    return decode_bmp_at(data, 0)


def decode_bmp_at(data: bytes, offset: int) -> Tuple[BmpMessage, int]:
    """Decode one BMP message starting at *offset* in *data*.

    Equivalent to ``decode_bmp(data[offset:])`` without the leading
    copy — stream consumers walk a buffer by offset so a multi-megabyte
    full-RIB dump costs one pass, not one slice per message.
    """
    available = len(data) - offset
    if available < _COMMON_HEADER_LEN:
        raise TruncatedMessage("BMP common header truncated")
    version, length, msg_type = struct.unpack_from("!BIB", data, offset)
    if version != BMP_VERSION:
        raise MalformedMessage(f"unsupported BMP version {version}")
    if length < _COMMON_HEADER_LEN:
        raise MalformedMessage(f"bad BMP length {length}")
    if length > MAX_BMP_MESSAGE_LENGTH:
        raise MalformedMessage(f"implausible BMP length {length}")
    if available < length:
        raise TruncatedMessage("BMP body truncated")
    body = bytes(data[offset + _COMMON_HEADER_LEN : offset + length])
    try:
        message = _decode_body(msg_type, body)
    except MalformedMessage:
        raise
    except TruncatedMessage as exc:
        # The common header promised a complete message, so a body that
        # ends early is a framing defect, not missing bytes: reporting
        # it as truncation would park stream consumers waiting forever.
        raise MalformedMessage(f"BMP body inconsistent: {exc}") from exc
    except (struct.error, IndexError, OverflowError, ValueError) as exc:
        raise MalformedMessage(
            f"BMP type-{msg_type} body invalid: {exc}"
        ) from exc
    return message, length


def _decode_body(msg_type: int, body: bytes) -> BmpMessage:
    if msg_type == BmpMessageType.INITIATION:
        sys_name, sys_descr = "", ""
        for tlv_type, value in _decode_info_tlvs(body):
            if tlv_type == InfoTlvType.SYS_NAME:
                sys_name = value.decode(errors="replace")
            elif tlv_type == InfoTlvType.SYS_DESCR:
                sys_descr = value.decode(errors="replace")
        return InitiationMessage(sys_name=sys_name, sys_descr=sys_descr)
    if msg_type == BmpMessageType.TERMINATION:
        reason = ""
        for tlv_type, value in _decode_info_tlvs(body):
            if tlv_type == InfoTlvType.STRING:
                reason = value.decode(errors="replace")
        return TerminationMessage(reason=reason)
    if msg_type == BmpMessageType.PEER_UP:
        peer = PeerHeader.decode(body)
        offset = _PEER_HEADER_LEN
        if len(body) < offset + 20:
            raise TruncatedMessage("PEER_UP body truncated")
        local_address = int.from_bytes(body[offset : offset + 16], "big")
        local_port, remote_port = struct.unpack_from(
            "!HH", body, offset + 16
        )
        # The two OPEN PDUs follow; split on the BGP length field.
        rest = body[offset + 20 :]
        sent_open, received_open = _split_two_pdus(rest)
        return PeerUpMessage(
            peer=peer,
            local_address=local_address,
            local_port=local_port,
            remote_port=remote_port,
            sent_open=sent_open,
            received_open=received_open,
        )
    if msg_type == BmpMessageType.PEER_DOWN:
        peer = PeerHeader.decode(body)
        rest = body[_PEER_HEADER_LEN:]
        if not rest:
            raise TruncatedMessage("PEER_DOWN missing reason")
        return PeerDownMessage(peer=peer, reason=rest[0], data=rest[1:])
    if msg_type == BmpMessageType.ROUTE_MONITORING:
        peer = PeerHeader.decode(body)
        return RouteMonitoringMessage(
            peer=peer, update_pdu=body[_PEER_HEADER_LEN:]
        )
    if msg_type == BmpMessageType.STATISTICS_REPORT:
        peer = PeerHeader.decode(body)
        offset = _PEER_HEADER_LEN
        if len(body) < offset + 4:
            raise TruncatedMessage("STATS count truncated")
        count = struct.unpack_from("!I", body, offset)[0]
        offset += 4
        stats = []
        for _ in range(count):
            if offset + 4 > len(body):
                raise TruncatedMessage("STATS TLV truncated")
            stat_type, stat_len = struct.unpack_from("!HH", body, offset)
            offset += 4
            if offset + stat_len > len(body):
                raise TruncatedMessage("STATS TLV body truncated")
            if stat_len == 8:
                value = struct.unpack_from("!Q", body, offset)[0]
            elif stat_len == 4:
                value = struct.unpack_from("!I", body, offset)[0]
            else:
                raise MalformedMessage(f"bad stat length {stat_len}")
            stats.append((stat_type, value))
            offset += stat_len
        return StatisticsReport(peer=peer, stats=tuple(stats))
    raise MalformedMessage(f"unknown BMP message type {msg_type}")


def _split_two_pdus(data: bytes) -> Tuple[bytes, bytes]:
    """Split a buffer holding exactly two BGP PDUs (as in PEER_UP)."""
    if not data:
        return b"", b""
    if len(data) < 19:
        raise TruncatedMessage("PEER_UP OPEN PDU truncated")
    first_len = struct.unpack_from("!H", data, 16)[0]
    if first_len > len(data):
        raise TruncatedMessage("PEER_UP first OPEN truncated")
    return data[:first_len], data[first_len:]


def decode_bmp_stream(data: bytes) -> Tuple[List[BmpMessage], bytes]:
    """Decode every complete BMP message; returns (messages, remainder)."""
    messages: List[BmpMessage] = []
    offset = 0
    while offset < len(data):
        try:
            message, consumed = decode_bmp(data[offset:])
        except TruncatedMessage:
            break
        messages.append(message)
        offset += consumed
    return messages, data[offset:]
