"""Plain-text tables and series — what the benchmark harness prints.

Each experiment returns a :class:`Table` (rows like the paper's tables)
and/or :class:`Series` (the data behind a figure); both render to aligned
monospace text so `pytest benchmarks/ --benchmark-only -s` output reads
like the paper's evaluation section.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

__all__ = ["Table", "Series", "format_value"]


def format_value(value) -> str:
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.01:
            return f"{value:.2e}"
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    return str(value)


@dataclass
class Table:
    """A titled table with named columns."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence] = field(default_factory=list)

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(values)

    def render(self) -> str:
        cells = [[format_value(v) for v in row] for row in self.rows]
        headers = [str(c) for c in self.columns]
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in cells))
            if cells
            else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [self.title, "=" * len(self.title)]
        lines.append(
            "  ".join(h.ljust(w) for h, w in zip(headers, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append(
                "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


@dataclass
class Series:
    """A named (x, y) series — the data behind one figure curve."""

    name: str
    points: List[Tuple[float, float]] = field(default_factory=list)
    x_label: str = "x"
    y_label: str = "y"

    def add(self, x: float, y: float) -> None:
        self.points.append((x, y))

    def render(self, max_points: int = 24) -> str:
        lines = [f"{self.name}  ({self.x_label} -> {self.y_label})"]
        points = self.points
        if len(points) > max_points:
            step = len(points) / max_points
            points = [
                points[int(i * step)] for i in range(max_points)
            ] + [points[-1]]
        for x, y in points:
            lines.append(
                f"  {format_value(x):>14}  {format_value(y):>12}"
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def render_all(*items) -> str:
    """Render tables and series separated by blank lines."""
    return "\n\n".join(str(item) for item in items)
