"""Perf instrumentation for the tick engine.

The paper's controller must finish well inside its 30-second cycle; the
reproduction's analogue is wall-clock headroom — how fast a simulated
tick (dataplane + sampling + controller) runs relative to the interval
it simulates.  :class:`PerfRecorder` hangs off a
:class:`~repro.core.pipeline.PopDeployment` (``deployment.perf = ...``)
and collects two series:

- **tick wall time**: full ``step()`` latency, dataplane through
  bookkeeping, and
- **cycle runtime**: the controller's own per-cycle compute time (the
  ``runtime_seconds`` each :class:`CycleReport` already carries).

Snapshots summarize each series as mean/percentile statistics, and
``write_json`` persists them — the format ``benchmarks/
bench_tick_hotpath.py`` records into ``BENCH_hotpath.json``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

__all__ = ["PerfSnapshot", "PerfRecorder", "percentile"]


def percentile(values: List[float], fraction: float) -> float:
    """Linear-interpolated percentile of *values*.

    Sorts defensively: callers used to be required to pass an
    ascending-sorted list, and an unsorted one silently produced
    garbage quantiles.  Pre-sorted input costs only the O(n) sortedness
    scan ``sorted`` does anyway.
    """
    if not values:
        return 0.0
    if len(values) == 1:
        return values[0]
    ordered = sorted(values)
    position = fraction * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    return (
        ordered[lower] * (1.0 - weight)
        + ordered[upper] * weight
    )


@dataclass(frozen=True)
class PerfSnapshot:
    """Summary statistics for one timing series, in milliseconds."""

    count: int
    mean_ms: float
    p50_ms: float
    p90_ms: float
    p99_ms: float
    max_ms: float

    @classmethod
    def of(cls, seconds: List[float]) -> "PerfSnapshot":
        if not seconds:
            return cls(
                count=0,
                mean_ms=0.0,
                p50_ms=0.0,
                p90_ms=0.0,
                p99_ms=0.0,
                max_ms=0.0,
            )
        values = sorted(value * 1000.0 for value in seconds)
        return cls(
            count=len(values),
            mean_ms=sum(values) / len(values),
            p50_ms=percentile(values, 0.50),
            p90_ms=percentile(values, 0.90),
            p99_ms=percentile(values, 0.99),
            max_ms=values[-1],
        )


class PerfRecorder:
    """Accumulates per-tick and per-cycle timings for one run."""

    def __init__(self) -> None:
        self.tick_seconds: List[float] = []
        self.cycle_seconds: List[float] = []

    def record_tick(self, seconds: float) -> None:
        self.tick_seconds.append(seconds)

    def record_cycle(self, seconds: float) -> None:
        self.cycle_seconds.append(seconds)

    def tick_snapshot(self) -> PerfSnapshot:
        return PerfSnapshot.of(self.tick_seconds)

    def cycle_snapshot(self) -> PerfSnapshot:
        return PerfSnapshot.of(self.cycle_seconds)

    def to_dict(self, extra: Optional[Dict] = None) -> Dict:
        payload: Dict = {
            "tick": asdict(self.tick_snapshot()),
            "cycle": asdict(self.cycle_snapshot()),
        }
        if extra:
            payload.update(extra)
        return payload

    def write_json(self, path, extra: Optional[Dict] = None) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(extra), handle, indent=2, sort_keys=True)
            handle.write("\n")
