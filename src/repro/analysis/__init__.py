"""Analysis helpers: CDFs, result rendering, and perf instrumentation."""

from .cdf import Cdf
from .perf import PerfRecorder, PerfSnapshot
from .report import Series, Table, format_value, render_all

__all__ = [
    "Cdf",
    "PerfRecorder",
    "PerfSnapshot",
    "Series",
    "Table",
    "format_value",
    "render_all",
]
