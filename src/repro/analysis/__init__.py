"""Analysis helpers: CDFs and result rendering."""

from .cdf import Cdf
from .report import Series, Table, format_value, render_all

__all__ = ["Cdf", "Series", "Table", "format_value", "render_all"]
