"""Empirical CDFs, optionally weighted — the evaluation's lingua franca.

The paper reports most results as CDFs over prefixes or over traffic
(weighting each prefix by its volume).  :class:`Cdf` supports both and
answers the two standard queries: ``fraction_at_most(x)`` (the y value at
x) and ``percentile(p)`` (the x value at y=p).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, List, Optional, Tuple

import numpy as np

__all__ = ["Cdf"]


class Cdf:
    """An empirical (weighted) cumulative distribution."""

    def __init__(
        self,
        values: Iterable[float],
        weights: Optional[Iterable[float]] = None,
    ) -> None:
        values = np.asarray(list(values), dtype=float)
        if values.size == 0:
            raise ValueError("CDF needs at least one value")
        if weights is None:
            weights = np.ones_like(values)
        else:
            weights = np.asarray(list(weights), dtype=float)
            if weights.shape != values.shape:
                raise ValueError("weights must match values")
            if (weights < 0).any():
                raise ValueError("weights must be non-negative")
            if weights.sum() == 0:
                raise ValueError("weights must not all be zero")
        order = np.argsort(values, kind="stable")
        self._values = values[order]
        cumulative = np.cumsum(weights[order])
        self._cumulative = cumulative / cumulative[-1]

    @property
    def count(self) -> int:
        return int(self._values.size)

    @property
    def min(self) -> float:
        return float(self._values[0])

    @property
    def max(self) -> float:
        return float(self._values[-1])

    def fraction_at_most(self, x: float) -> float:
        """P(value <= x)."""
        index = bisect_right(self._values.tolist(), x)
        if index == 0:
            return 0.0
        return float(self._cumulative[index - 1])

    def fraction_above(self, x: float) -> float:
        return 1.0 - self.fraction_at_most(x)

    def percentile(self, p: float) -> float:
        """Smallest x with P(value <= x) >= p (p in [0, 100])."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p} out of range")
        target = p / 100.0
        index = int(np.searchsorted(self._cumulative, target, side="left"))
        index = min(index, self._values.size - 1)
        return float(self._values[index])

    @property
    def median(self) -> float:
        return self.percentile(50)

    def points(self, count: int = 50) -> List[Tuple[float, float]]:
        """(x, y) samples of the curve, for plotting or table rows."""
        if count < 2:
            raise ValueError("need at least two points")
        indices = np.linspace(0, self._values.size - 1, count).astype(int)
        return [
            (float(self._values[i]), float(self._cumulative[i]))
            for i in indices
        ]

    def summary(self) -> dict:
        return {
            "count": self.count,
            "min": self.min,
            "p25": self.percentile(25),
            "median": self.median,
            "p75": self.percentile(75),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": self.max,
        }
