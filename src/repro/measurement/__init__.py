"""Path performance measurement: models, passive stats, alt-path rounds."""

from .altpath import AltPathComparison, AltPathMonitor, DscpPolicy
from .passive import PassiveMonitor, PathStats
from .pathmodel import (
    FlowMeasurement,
    PathModelConfig,
    PathPerformanceModel,
)

__all__ = [
    "AltPathComparison",
    "AltPathMonitor",
    "DscpPolicy",
    "PassiveMonitor",
    "PathStats",
    "FlowMeasurement",
    "PathModelConfig",
    "PathPerformanceModel",
]
