"""Alternate-path measurement: randomly route a slice of flows onto
non-preferred paths and compare their performance (paper §5).

Mechanically, production Edge Fabric has servers mark ~1 flow in a few
hundred with one of a handful of DSCP values; policy-based routing rules
on the peering routers map each DSCP value onto the 1st/2nd/3rd-preferred
route for the destination, and the passive monitor attributes the flows'
TCP statistics to the path their DSCP selected.  :class:`DscpPolicy`
captures the DSCP→rank mapping, and :class:`AltPathMonitor` runs the
measurement rounds against the path performance model and aggregates the
comparisons the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..bgp.route import Route
from ..netbase.addr import Prefix
from ..netbase.errors import MeasurementError
from ..topology.entities import InterfaceKey
from .pathmodel import PathPerformanceModel
from .passive import PassiveMonitor, PathStats

__all__ = ["DscpPolicy", "AltPathComparison", "AltPathMonitor"]

#: Callable returning a prefix's routes in decision order (eBGP only).
RouteProvider = Callable[[Prefix], Sequence[Route]]

#: Callable returning an interface's current utilization (0.0 if idle).
UtilizationProvider = Callable[[InterfaceKey], float]


@dataclass(frozen=True)
class DscpPolicy:
    """DSCP value ↔ path-rank mapping enforced by PBR on the routers.

    Rank 0 is the BGP-preferred path; production used a small number of
    values (the paper measures the top few alternates).
    """

    dscp_of_rank: tuple = (0, 12, 16, 20)

    def dscp_for(self, rank: int) -> int:
        if not 0 <= rank < len(self.dscp_of_rank):
            raise MeasurementError(f"no DSCP assigned for path rank {rank}")
        return self.dscp_of_rank[rank]

    def rank_for(self, dscp: int) -> Optional[int]:
        try:
            return self.dscp_of_rank.index(dscp)
        except ValueError:
            return None

    @property
    def measured_ranks(self) -> int:
        return len(self.dscp_of_rank)


@dataclass(frozen=True)
class AltPathComparison:
    """One prefix's alternate path vs its preferred path."""

    prefix: Prefix
    rank: int  # 1 = second-preferred, 2 = third-preferred ...
    preferred_session: str
    alternate_session: str
    median_rtt_delta_ms: float  # alternate minus preferred
    retransmit_delta: float
    preferred: PathStats
    alternate: PathStats


class AltPathMonitor:
    """Runs alternate-path measurement rounds and aggregates results."""

    def __init__(
        self,
        routes_of: RouteProvider,
        model: PathPerformanceModel,
        egress_interface_of: Callable[[Route], InterfaceKey],
        policy: DscpPolicy = DscpPolicy(),
        flows_per_round: int = 40,
        seed: int = 0,
    ) -> None:
        self.routes_of = routes_of
        self.model = model
        self.egress_interface_of = egress_interface_of
        self.policy = policy
        self.flows_per_round = flows_per_round
        self.monitor = PassiveMonitor()
        self._rng = np.random.default_rng(seed)

    def measure_round(
        self,
        prefixes: Sequence[Prefix],
        utilization_of: UtilizationProvider = lambda _key: 0.0,
    ) -> int:
        """Measure each prefix's top paths once; returns paths measured."""
        measured = 0
        for prefix in prefixes:
            routes = [
                route
                for route in self.routes_of(prefix)
                if not route.is_injected
            ]
            if not routes:
                continue
            for rank, route in enumerate(
                routes[: self.policy.measured_ranks]
            ):
                utilization = utilization_of(
                    self.egress_interface_of(route)
                )
                flows = self.model.sample_flows(
                    prefix,
                    route.source.name,
                    utilization,
                    self.flows_per_round,
                    self._rng,
                    preferred=(rank == 0),
                )
                self.monitor.record(prefix, route.source.name, flows)
                measured += 1
        return measured

    # -- aggregation -----------------------------------------------------------

    def comparisons(self) -> List[AltPathComparison]:
        """All (alternate vs preferred) comparisons with data on both sides.

        Path identity (which session is preferred) is re-derived from the
        route provider at aggregation time, mirroring how production joins
        its measurement tables against current routing.
        """
        results: List[AltPathComparison] = []
        for prefix in self.monitor.prefixes():
            routes = [
                route
                for route in self.routes_of(prefix)
                if not route.is_injected
            ]
            if len(routes) < 2:
                continue
            preferred_stats = self.monitor.stats(
                prefix, routes[0].source.name
            )
            if preferred_stats is None:
                continue
            for rank, route in enumerate(
                routes[1 : self.policy.measured_ranks], start=1
            ):
                alt_stats = self.monitor.stats(prefix, route.source.name)
                if alt_stats is None:
                    continue
                results.append(
                    AltPathComparison(
                        prefix=prefix,
                        rank=rank,
                        preferred_session=routes[0].source.name,
                        alternate_session=route.source.name,
                        median_rtt_delta_ms=(
                            alt_stats.median_rtt_ms
                            - preferred_stats.median_rtt_ms
                        ),
                        retransmit_delta=(
                            alt_stats.retransmit_rate
                            - preferred_stats.retransmit_rate
                        ),
                        preferred=preferred_stats,
                        alternate=alt_stats,
                    )
                )
        return results

    def rtt_deltas_by_rank(self) -> Dict[int, List[float]]:
        """Median-RTT deltas grouped by alternate rank (for the CDFs)."""
        grouped: Dict[int, List[float]] = {}
        for comparison in self.comparisons():
            grouped.setdefault(comparison.rank, []).append(
                comparison.median_rtt_delta_ms
            )
        return grouped

    def better_alternate_fraction(self, rank: int = 1) -> float:
        """Fraction of prefixes whose rank-N alternate beats preferred."""
        deltas = self.rtt_deltas_by_rank().get(rank, [])
        if not deltas:
            return 0.0
        return sum(1 for delta in deltas if delta < 0) / len(deltas)
