"""Synthetic per-path performance model (RTT and loss).

The paper measures alternate-path performance with production traffic;
this reproduction substitutes a generative model with the observed shape:

- each destination prefix has a baseline RTT (lognormal across prefixes —
  nearby cable customers to far satellite links),
- each (prefix, egress path) pair has a *static* offset from baseline,
  drawn from a mixture calibrated to the paper's findings: most
  alternates are within a few milliseconds of the preferred path, a small
  minority are dramatically worse (distant detours), and a meaningful
  minority are actually *better* (the preferred path is not always the
  best performer),
- congestion adds delay as an interface approaches saturation and loss
  once offered load exceeds capacity.

The static part is a pure function of (seed, prefix, session), so any
component can ask "what would this path's RTT be" and get a consistent
answer — which is what makes the performance-aware routing experiments
reproducible.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from ..netbase.addr import Prefix

__all__ = ["PathModelConfig", "FlowMeasurement", "PathPerformanceModel"]


@dataclass(frozen=True)
class PathModelConfig:
    seed: int = 0
    #: Lognormal parameters for the per-prefix baseline RTT (milliseconds).
    base_rtt_median_ms: float = 45.0
    base_rtt_sigma: float = 0.55
    #: Mixture for the per-path static offset, as (probability, mu, sigma).
    offset_mixture: tuple = (
        (0.67, 2.0, 2.0),  # roughly comparable
        (0.20, -3.0, 3.0),  # alternate slightly better
        (0.03, -25.0, 10.0),  # markedly better (perf-aware candidates)
        (0.10, 30.0, 18.0),  # much worse (distant detour)
    )
    #: Baseline retransmission probability on an uncongested path.
    base_retransmit: float = 0.004
    #: Utilization where congestion effects begin.
    congestion_knee: float = 0.95
    #: Added delay (ms) when offered load reaches capacity.
    congestion_delay_ms: float = 25.0
    #: Measurement noise on individual flow RTT samples.
    flow_noise_sigma: float = 0.08


@dataclass(frozen=True)
class FlowMeasurement:
    """One passively measured flow."""

    rtt_ms: float
    retransmitted: bool


class PathPerformanceModel:
    """Deterministic per-(prefix, path) performance, plus flow sampling."""

    def __init__(self, config: PathModelConfig = PathModelConfig()) -> None:
        self.config = config

    # -- deterministic medians ------------------------------------------------

    def _rng_for(self, *parts: object) -> np.random.Generator:
        text = ":".join(str(part) for part in parts)
        digest = zlib.crc32(text.encode()) ^ (self.config.seed * 0x9E3779B9)
        return np.random.default_rng(digest & 0xFFFFFFFF)

    def base_rtt_ms(self, prefix: Prefix) -> float:
        """The prefix's baseline (preferred-path) median RTT."""
        rng = self._rng_for("base", prefix)
        return float(
            self.config.base_rtt_median_ms
            * np.exp(rng.normal(0.0, self.config.base_rtt_sigma))
        )

    def path_offset_ms(self, prefix: Prefix, session_name: str) -> float:
        """Static RTT offset of one egress path from the prefix baseline."""
        rng = self._rng_for("offset", prefix, session_name)
        probabilities = [component[0] for component in self.config.offset_mixture]
        choice = rng.choice(len(probabilities), p=probabilities)
        _p, mu, sigma = self.config.offset_mixture[int(choice)]
        return float(rng.normal(mu, sigma))

    def congestion_delay_ms(self, utilization: float) -> float:
        """Queueing delay added at the egress as load approaches capacity."""
        knee = self.config.congestion_knee
        if utilization <= knee:
            return 0.0
        ramp = min(1.0, (utilization - knee) / (1.0 - knee))
        return self.config.congestion_delay_ms * ramp

    def congestion_loss(self, utilization: float) -> float:
        """Fraction of offered traffic dropped when demand exceeds capacity."""
        if utilization <= 1.0:
            return 0.0
        return 1.0 - 1.0 / utilization

    def path_rtt_ms(
        self,
        prefix: Prefix,
        session_name: str,
        utilization: float = 0.0,
        preferred: bool = False,
    ) -> float:
        """Median RTT of one path under the given egress utilization.

        The BGP-preferred path (``preferred=True``) anchors the prefix
        baseline: peers build direct interconnects precisely for the
        traffic they exchange, so the preferred path's uncongested RTT
        *is* the reference the alternates' offsets are measured against.
        """
        rtt = self.base_rtt_ms(prefix) + self.congestion_delay_ms(
            utilization
        )
        if not preferred:
            rtt += self.path_offset_ms(prefix, session_name)
        return max(1.0, rtt)

    def retransmit_rate(
        self, prefix: Prefix, session_name: str, utilization: float = 0.0
    ) -> float:
        """Expected retransmission fraction on one path."""
        rng = self._rng_for("retx", prefix, session_name)
        base = self.config.base_retransmit * float(
            np.exp(rng.normal(0.0, 0.3))
        )
        congested = self.congestion_loss(utilization)
        # Just below saturation, queues overflow transiently.
        knee = self.config.congestion_knee
        if 1.0 >= utilization > knee:
            congested += 0.01 * (utilization - knee) / (1.0 - knee)
        return min(1.0, base + congested)

    # -- flow sampling -----------------------------------------------------------

    def sample_flows(
        self,
        prefix: Prefix,
        session_name: str,
        utilization: float,
        count: int,
        rng: np.random.Generator,
        preferred: bool = False,
    ) -> list[FlowMeasurement]:
        """Passively measured flows on one path (noisy around the median)."""
        median = self.path_rtt_ms(
            prefix, session_name, utilization, preferred=preferred
        )
        retransmit = self.retransmit_rate(prefix, session_name, utilization)
        rtts = median * np.exp(
            rng.normal(0.0, self.config.flow_noise_sigma, count)
        )
        retx = rng.random(count) < retransmit
        return [
            FlowMeasurement(rtt_ms=float(rtt), retransmitted=bool(flag))
            for rtt, flag in zip(rtts, retx)
        ]
