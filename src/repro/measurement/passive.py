"""Passive flow measurement aggregation.

Production Edge Fabric taps TCP state on the front-end servers (an
eBPF-style sampler) and aggregates per ⟨destination prefix, egress path⟩
performance.  This module is that aggregation layer: it ingests
:class:`~repro.measurement.pathmodel.FlowMeasurement` records and answers
median/percentile RTT and retransmission-rate queries per key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..netbase.addr import Prefix
from ..netbase.errors import MeasurementError
from .pathmodel import FlowMeasurement

__all__ = ["PathStats", "PassiveMonitor"]

#: Identifies one measured egress path for one prefix.
PathKey = Tuple[Prefix, str]  # (prefix, session name)


@dataclass(frozen=True)
class PathStats:
    """Aggregate statistics for one (prefix, path)."""

    prefix: Prefix
    session_name: str
    samples: int
    median_rtt_ms: float
    p90_rtt_ms: float
    retransmit_rate: float


class PassiveMonitor:
    """Accumulates flow measurements per (prefix, egress session)."""

    def __init__(self, max_samples_per_key: int = 4096) -> None:
        if max_samples_per_key < 1:
            raise MeasurementError("need at least one sample per key")
        self.max_samples_per_key = max_samples_per_key
        self._rtts: Dict[PathKey, List[float]] = {}
        self._retx: Dict[PathKey, List[bool]] = {}

    def record(
        self,
        prefix: Prefix,
        session_name: str,
        measurements: Iterable[FlowMeasurement],
    ) -> None:
        key = (prefix, session_name)
        rtts = self._rtts.setdefault(key, [])
        retx = self._retx.setdefault(key, [])
        for measurement in measurements:
            if len(rtts) >= self.max_samples_per_key:
                # Simple reservoir-ish recycling: drop the oldest half.
                del rtts[: self.max_samples_per_key // 2]
                del retx[: self.max_samples_per_key // 2]
            rtts.append(measurement.rtt_ms)
            retx.append(measurement.retransmitted)

    def stats(self, prefix: Prefix, session_name: str) -> Optional[PathStats]:
        key = (prefix, session_name)
        rtts = self._rtts.get(key)
        if not rtts:
            return None
        retx = self._retx[key]
        return PathStats(
            prefix=prefix,
            session_name=session_name,
            samples=len(rtts),
            median_rtt_ms=float(np.median(rtts)),
            p90_rtt_ms=float(np.percentile(rtts, 90)),
            retransmit_rate=float(np.mean(retx)),
        )

    def keys(self) -> List[PathKey]:
        return list(self._rtts)

    def prefixes(self) -> List[Prefix]:
        return sorted({prefix for prefix, _name in self._rtts})

    def paths_for(self, prefix: Prefix) -> List[str]:
        return [name for p, name in self._rtts if p == prefix]

    def stats_for_prefix(self, prefix: Prefix) -> Dict[str, PathStats]:
        """Every measured path's stats for *prefix*, keyed by session.

        The closed-loop steering engine's per-cycle read: one dict
        lookup set instead of a stats() call per candidate route.
        """
        out: Dict[str, PathStats] = {}
        for name in self.paths_for(prefix):
            stats = self.stats(prefix, name)
            if stats is not None:
                out[name] = stats
        return out

    def clear(self) -> None:
        self._rtts.clear()
        self._retx.clear()
